//! # atena-rl
//!
//! The deep-reinforcement-learning machinery of ATENA (paper §5–6):
//!
//! - [`TwofoldPolicy`] — the paper's novel architecture: a shared MLP trunk,
//!   a pre-output layer with one node per operation type and parameter
//!   value, and a multi-softmax layer normalizing each segment
//!   independently;
//! - [`FlatPolicy`] — the off-the-shelf baseline with one softmax node per
//!   distinct action (OTS-DRL / OTS-DRL-B);
//! - [`PpoLearner`] — advantage actor-critic with PPO clipping, GAE(λ), and
//!   entropy regularization;
//! - [`Trainer`] — deterministic rollout collection over the
//!   `atena-runtime` worker pool (serial and parallel [`RolloutSource`]s
//!   are bit-identical at a seed) with synchronous PPO updates,
//!   convergence-curve logging, and best-episode extraction;
//! - [`greedy_episode`] — the non-learned Greedy-IO / Greedy-CR baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod flat;
mod greedy;
mod policy;
mod ppo;
mod rollout;
mod source;
mod trainer;
mod twofold;

pub use checkpoint::{Checkpoint, CheckpointError};
pub use flat::FlatPolicy;
pub use greedy::{greedy_episode, random_episode, GreedyConfig};
pub use policy::{
    active_heads, op_of_head_choice, ActionChoice, ActionMapper, Evaluation, MappedAction, Policy,
    PolicyRow, PolicyStep, N_HEADS,
};
pub use ppo::{PpoConfig, PpoLearner, UpdateStats};
pub use rollout::{AdvantageEstimates, RolloutBuffer, RolloutStep};
pub use source::{
    BatchedRollouts, ParallelRollouts, RolloutPlan, RolloutSource, SerialRollouts,
    DEFAULT_DISPLAY_CACHE,
};
pub use trainer::{CurvePoint, EpisodeRecord, TrainLog, Trainer, TrainerConfig};
pub use twofold::{TwofoldConfig, TwofoldPolicy};
