//! Integration test: a short training run with a JSONL sink attached must
//! stream per-iteration diagnostics and per-episode reward decompositions
//! in the stable `{ts, kind, name, value, labels}` schema.

use atena_dataframe::{AttrRole, DataFrame};
use atena_env::{EdaEnv, EnvConfig};
use atena_reward::{CoherencyConfig, CompoundReward};
use atena_rl::{ActionMapper, PpoConfig, Trainer, TrainerConfig, TwofoldConfig, TwofoldPolicy};
use atena_telemetry::MetricsRegistry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn base() -> DataFrame {
    DataFrame::builder()
        .str(
            "proto",
            AttrRole::Categorical,
            (0..60).map(|i| Some(if i % 5 == 0 { "icmp" } else { "tcp" })),
        )
        .str(
            "src",
            AttrRole::Categorical,
            (0..60).map(|i| Some(["a", "b", "c"][i % 3])),
        )
        .int(
            "len",
            AttrRole::Numeric,
            (0..60).map(|i| Some((i * 31 % 47) as i64)),
        )
        .build()
        .unwrap()
}

#[test]
fn train_streams_iteration_and_episode_events() {
    let env_config = EnvConfig {
        episode_len: 6,
        n_bins: 5,
        history_window: 3,
        seed: 11,
    };
    let probe = EdaEnv::new(base(), env_config.clone());
    let mut rng = StdRng::seed_from_u64(11);
    let policy = TwofoldPolicy::new(
        probe.observation_dim(),
        probe.action_space().head_sizes(),
        TwofoldConfig { hidden: [32, 32] },
        &mut rng,
    );
    let mut reward = CompoundReward::new(CoherencyConfig::with_focal_attrs(vec!["src".into()]));
    let mut fit_env = EdaEnv::new(base(), env_config.clone());
    reward.fit(&mut fit_env, 120, 11);

    let dir = std::env::temp_dir().join("atena-rl-telemetry-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("train.jsonl");
    let registry = Arc::new(MetricsRegistry::new());
    registry.set_jsonl_sink(&path).unwrap();

    let mut trainer = Trainer::new(
        Arc::new(policy),
        ActionMapper::Twofold,
        Arc::new(reward),
        &base(),
        env_config,
        TrainerConfig {
            n_lanes: 2,
            n_workers: 2,
            rollout_len: 48,
            seed: 11,
            ppo: PpoConfig {
                minibatch: 32,
                epochs: 2,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .with_telemetry(Arc::clone(&registry));
    // Two iterations' worth of steps (2 lanes x 48 per iteration).
    trainer.train(192);

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty(), "sink file is empty");
    // Stable schema on every line.
    for line in &lines {
        for field in [
            "\"ts\":",
            "\"kind\":",
            "\"name\":",
            "\"value\":",
            "\"labels\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }
    // At least one full iteration record.
    let iteration_lines: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"iteration\""))
        .collect();
    assert!(
        !iteration_lines.is_empty(),
        "no iteration events in:\n{text}"
    );
    for name in [
        "train.steps_per_sec",
        "train.mean_episode_reward",
        "train.temperature",
        "train.rollout_secs",
        "train.update_secs",
        "train.policy_loss",
        "train.value_loss",
        "train.entropy",
        "train.grad_norm",
        "train.clip_fraction",
    ] {
        assert!(
            iteration_lines
                .iter()
                .any(|l| l.contains(&format!("\"{name}\""))),
            "no iteration event named {name} in:\n{text}"
        );
    }
    // Per-episode reward decomposition carries all three components (plus
    // penalty and total).
    let episode_lines: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"episode\""))
        .collect();
    assert!(!episode_lines.is_empty(), "no episode events in:\n{text}");
    for name in [
        "reward.interestingness",
        "reward.diversity",
        "reward.coherency",
        "reward.penalty",
        "reward.total",
    ] {
        assert!(
            episode_lines
                .iter()
                .any(|l| l.contains(&format!("\"{name}\""))),
            "no episode event named {name} in:\n{text}"
        );
    }
    // Aggregate counters were kept alongside the event stream.
    assert!(registry.counter("train.iterations").get() >= 2);
    assert!(registry.counter("train.steps").get() >= 192);
    assert!(registry.counter("train.episodes").get() >= 1);
}
