//! Chaos / byzantine-client harness for the serving stack (DESIGN.md §4n).
//!
//! A library of *hostile* HTTP clients — slow-loris byte dribblers,
//! mid-request and mid-response disconnectors, malformed and oversized
//! frames, header floods, pipelined garbage, and per-tenant request
//! floods — plus a scripted scenario runner that drives them against a
//! live `atena-server` and checks a **typed expected outcome** per
//! scenario (exact status code, bounded 408/close, or tolerated abort).
//!
//! Two invariants run through everything here:
//!
//! 1. **The pool is never poisoned.** After every scenario the runner
//!    probes `/v1/healthz` and replays a known-good `/v1/notebook`
//!    request whose response must stay **byte-identical** to the offline
//!    decode of the same request. A byzantine client may cost the server
//!    one connection; it may never cost correctness for anyone else.
//! 2. **Attacks are bounded.** A dribbling or silent peer must be cut
//!    off within the server's per-request deadline (plus grace), never
//!    hold a worker indefinitely.
//!
//! [`run_soak`] sustains mixed good/byzantine traffic with the dataset
//! registry and display cache churning at capacity, sampling
//! `/v1/metrics` for the `server.mem.rss_bytes` gauge (flat-memory
//! assertion), monotone counters, and advancing eviction counters.
//!
//! The `chaos` binary wires this module to a self-hosted server from a
//! checkpoint and persists `BENCH_chaos.json`.

use serde::Serialize;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Grace added to the server's per-request deadline when asserting that
/// an attack was cut off "in time" (scheduling jitter, loopback RTT).
const DEADLINE_GRACE: Duration = Duration::from_millis(1500);

/// How long [`read_outcome`] waits for response bytes before classifying
/// the exchange as a client-side read timeout.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(20);

// ---- target ------------------------------------------------------------

/// The server under attack, plus the known-good request whose response
/// bytes anchor the correctness checks.
#[derive(Clone)]
pub struct ChaosTarget {
    /// `host:port` of the live server.
    pub addr: String,
    /// JSON body of a known-good `POST /v1/notebook` request.
    pub good_body: String,
    /// The exact bytes a healthy client must receive for `good_body`
    /// (computed by an offline decode of the same request).
    pub expected_body: String,
    /// The server's per-request I/O deadline (`--timeout-ms`).
    pub request_timeout: Duration,
    /// The server's `/v1/notebook` body cap, for the oversized-body probe.
    pub max_body_bytes: usize,
}

impl ChaosTarget {
    /// Raw bytes of one `POST /v1/notebook` request for `good_body`.
    pub fn notebook_raw(&self, tenant: Option<&str>) -> Vec<u8> {
        let tenant_header = tenant
            .map(|t| format!("X-Atena-Tenant: {t}\r\n"))
            .unwrap_or_default();
        format!(
            "POST /v1/notebook HTTP/1.1\r\nHost: chaos\r\n{tenant_header}\
             Content-Type: application/json\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{}",
            self.good_body.len(),
            self.good_body
        )
        .into_bytes()
    }

    /// One good-client exchange: must be a 200 whose body is
    /// byte-identical to the offline decode. Returns the latency.
    pub fn good_shot(&self) -> Result<Duration, String> {
        let started = Instant::now();
        let mut stream = connect(&self.addr, CLIENT_READ_TIMEOUT)?;
        let raw = self.notebook_raw(None);
        stream.write_all(&raw).map_err(|e| format!("write: {e}"))?;
        match read_outcome(&mut stream) {
            Observed::Status { code: 200, body } => {
                if body == self.expected_body {
                    Ok(started.elapsed())
                } else {
                    Err(format!(
                        "response diverged from offline decode ({} vs {} bytes)",
                        body.len(),
                        self.expected_body.len()
                    ))
                }
            }
            other => Err(format!("good client got {other}")),
        }
    }

    /// `GET /v1/healthz` must answer 200 — the pool survived the attack.
    pub fn probe_healthz(&self) -> bool {
        let Ok(mut stream) = connect(&self.addr, CLIENT_READ_TIMEOUT) else {
            return false;
        };
        let raw = b"GET /v1/healthz HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n";
        if stream.write_all(raw).is_err() {
            return false;
        }
        matches!(
            read_outcome(&mut stream),
            Observed::Status { code: 200, .. }
        )
    }

    /// Fetch and parse the `/v1/metrics` JSON document.
    pub fn metrics(&self) -> Result<serde_json::Value, String> {
        let mut stream = connect(&self.addr, CLIENT_READ_TIMEOUT)?;
        let raw = b"GET /v1/metrics HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\r\n";
        stream.write_all(raw).map_err(|e| format!("write: {e}"))?;
        match read_outcome(&mut stream) {
            Observed::Status { code: 200, body } => {
                serde_json::from_str(&body).map_err(|e| format!("metrics JSON: {e}"))
            }
            other => Err(format!("metrics endpoint returned {other}")),
        }
    }
}

fn connect(addr: &str, read_timeout: Duration) -> Result<TcpStream, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(read_timeout))
        .map_err(|e| e.to_string())?;
    stream.set_nodelay(true).ok();
    Ok(stream)
}

// ---- observed outcomes -------------------------------------------------

/// What one byzantine exchange actually produced, as classified by the
/// harness's own HTTP reader.
#[derive(Debug, Clone, PartialEq)]
pub enum Observed {
    /// A complete HTTP response.
    Status { code: u16, body: String },
    /// The server closed the connection without a (complete) response.
    Closed,
    /// No response and no close within the client's read window.
    ReadTimeout,
    /// The *client* aborted by design (disconnect scenarios).
    Aborted,
    /// A pipelined pair: the good request's status, then what the
    /// trailing garbage produced.
    Pipelined { first: u16, second: Box<Observed> },
    /// Flood tally: every connection's terminal classification.
    Flood {
        ok: usize,
        shed: usize,
        other: usize,
    },
    /// Transport-level failure outside the scenario's script.
    Transport(String),
}

impl std::fmt::Display for Observed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Observed::Status { code, .. } => write!(f, "HTTP {code}"),
            Observed::Closed => write!(f, "connection closed, no response"),
            Observed::ReadTimeout => write!(f, "client read timeout (server hung?)"),
            Observed::Aborted => write!(f, "client aborted (by design)"),
            Observed::Pipelined { first, second } => {
                write!(f, "pipelined: HTTP {first}, then {second}")
            }
            Observed::Flood { ok, shed, other } => {
                write!(f, "flood: {ok} ok, {shed} shed (429), {other} other")
            }
            Observed::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

/// Read one HTTP response (or its absence) off `stream` and classify it.
pub fn read_outcome(stream: &mut TcpStream) -> Observed {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        if let Some((code, body)) = try_parse_response(&buf) {
            return Observed::Status { code, body };
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Observed::Closed,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Observed::ReadTimeout;
            }
            // A reset after a complete response never reaches here (the
            // parse above wins); mid-stream it means the server cut us off.
            Err(_) => return Observed::Closed,
        }
    }
}

/// Parse a complete `head + Content-Length body` response out of `buf`.
pub fn try_parse_response(buf: &[u8]) -> Option<(u16, String)> {
    let text = String::from_utf8_lossy(buf);
    let (head, rest) = text.split_once("\r\n\r\n")?;
    let mut lines = head.split("\r\n");
    let code: u16 = lines.next()?.split(' ').nth(1)?.parse().ok()?;
    let len: usize = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    if rest.len() < len {
        return None;
    }
    Some((code, rest[..len].to_string()))
}

// ---- scenarios ---------------------------------------------------------

/// One byzantine-client script.
#[derive(Debug, Clone)]
pub enum Scenario {
    /// Dribble the request *head* one byte per `byte_delay`, forever.
    SlowLorisHeaders { byte_delay: Duration },
    /// Send a complete head, then dribble the body one byte at a time.
    SlowLorisBody { byte_delay: Duration },
    /// Send half a valid request, then disconnect.
    MidRequestDisconnect,
    /// Send a valid request, read a little of the response, disconnect.
    MidResponseDisconnect,
    /// A request line that is not HTTP.
    MalformedRequestLine,
    /// One header value pushing the head past `MAX_HEAD_BYTES`.
    OversizedHeader,
    /// Thousands of small headers pushing the head past the cap.
    HeaderFlood,
    /// `Content-Length` past the body cap, with no real body behind it.
    OversizedBody { declared: usize },
    /// A declared body the client never finishes sending (then silence).
    TruncatedBody,
    /// A valid request with garbage pipelined behind it.
    PipelinedGarbage,
    /// Concurrent fresh-connection decodes from one tenant, to be shed
    /// by per-tenant admission control — never errored, never hung.
    RequestFlood { tenant: String, connections: usize },
}

impl Scenario {
    /// Stable scenario name for reports and the BENCH artifact.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::SlowLorisHeaders { .. } => "slow_loris_headers",
            Scenario::SlowLorisBody { .. } => "slow_loris_body",
            Scenario::MidRequestDisconnect => "mid_request_disconnect",
            Scenario::MidResponseDisconnect => "mid_response_disconnect",
            Scenario::MalformedRequestLine => "malformed_request_line",
            Scenario::OversizedHeader => "oversized_header",
            Scenario::HeaderFlood => "header_flood",
            Scenario::OversizedBody { .. } => "oversized_body",
            Scenario::TruncatedBody => "truncated_body",
            Scenario::PipelinedGarbage => "pipelined_garbage",
            Scenario::RequestFlood { .. } => "request_flood",
        }
    }

    /// The typed outcome this scenario must produce.
    pub fn expected(&self) -> Expectation {
        match self {
            Scenario::SlowLorisHeaders { .. }
            | Scenario::SlowLorisBody { .. }
            | Scenario::TruncatedBody => Expectation::TimeoutOrClose,
            Scenario::MidRequestDisconnect | Scenario::MidResponseDisconnect => {
                Expectation::ToleratedAbort
            }
            Scenario::MalformedRequestLine => Expectation::Status(400),
            Scenario::OversizedHeader | Scenario::HeaderFlood => Expectation::Status(431),
            Scenario::OversizedBody { .. } => Expectation::Status(413),
            Scenario::PipelinedGarbage => Expectation::OkThenReject,
            Scenario::RequestFlood { .. } => Expectation::ServedOrShed,
        }
    }
}

/// The typed outcome a scenario must produce to pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// Exactly this HTTP status.
    Status(u16),
    /// A 408 or a connection close, within `request_timeout` + grace.
    TimeoutOrClose,
    /// The client aborts by design; the server must simply survive
    /// (checked by the post-scenario health probe + good shot).
    ToleratedAbort,
    /// Pipelined: 200 for the good request, then 400 or close for the
    /// garbage behind it.
    OkThenReject,
    /// Flood: every connection ends in 200 or 429, none hang or error.
    ServedOrShed,
}

impl std::fmt::Display for Expectation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expectation::Status(code) => write!(f, "HTTP {code}"),
            Expectation::TimeoutOrClose => write!(f, "408 or close within deadline"),
            Expectation::ToleratedAbort => write!(f, "abort tolerated, server healthy"),
            Expectation::OkThenReject => write!(f, "200 then 400/close"),
            Expectation::ServedOrShed => write!(f, "every shot 200 or 429"),
        }
    }
}

/// The full scenario matrix, parameterized by the target's deadline so
/// the dribble cadence is always slower than an honest client but far
/// faster than the test would tolerate waiting.
pub fn scenario_matrix(target: &ChaosTarget) -> Vec<Scenario> {
    let byte_delay = (target.request_timeout / 10).max(Duration::from_millis(10));
    vec![
        Scenario::MalformedRequestLine,
        Scenario::OversizedHeader,
        Scenario::HeaderFlood,
        Scenario::OversizedBody {
            declared: target.max_body_bytes + 1,
        },
        Scenario::PipelinedGarbage,
        Scenario::MidRequestDisconnect,
        Scenario::MidResponseDisconnect,
        Scenario::SlowLorisHeaders { byte_delay },
        Scenario::SlowLorisBody { byte_delay },
        Scenario::TruncatedBody,
        Scenario::RequestFlood {
            tenant: "flooder".into(),
            connections: 16,
        },
    ]
}

/// One scenario's verdict, as persisted in `BENCH_chaos.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    pub scenario: String,
    pub expected: String,
    pub observed: String,
    /// The attack itself produced the expected typed outcome.
    pub outcome_ok: bool,
    /// `/v1/healthz` answered 200 right after the attack.
    pub probe_ok: bool,
    /// A good request right after the attack was byte-identical to the
    /// offline decode (the pool was not poisoned).
    pub good_shot_ok: bool,
    pub pass: bool,
    pub duration_ms: f64,
}

/// Run one scenario and verify its typed outcome, then prove the server
/// survived: health probe + a byte-identity good shot.
pub fn run_scenario(target: &ChaosTarget, scenario: &Scenario) -> ScenarioReport {
    let started = Instant::now();
    let observed = execute(target, scenario);
    let duration = started.elapsed();
    let outcome_ok = matches(&scenario.expected(), &observed, duration, target);
    let probe_ok = target.probe_healthz();
    let good_shot_ok = target.good_shot().is_ok();
    ScenarioReport {
        scenario: scenario.name().to_string(),
        expected: scenario.expected().to_string(),
        observed: observed.to_string(),
        outcome_ok,
        probe_ok,
        good_shot_ok,
        pass: outcome_ok && probe_ok && good_shot_ok,
        duration_ms: duration.as_secs_f64() * 1e3,
    }
}

/// Does `observed` satisfy `expected`, given how long the exchange took?
fn matches(
    expected: &Expectation,
    observed: &Observed,
    duration: Duration,
    target: &ChaosTarget,
) -> bool {
    let bound = target.request_timeout + DEADLINE_GRACE;
    match expected {
        Expectation::Status(want) => {
            matches!(observed, Observed::Status { code, .. } if code == want)
        }
        Expectation::TimeoutOrClose => {
            let cut_off = matches!(
                observed,
                Observed::Status { code: 408, .. } | Observed::Closed
            );
            cut_off && duration <= bound
        }
        Expectation::ToleratedAbort => matches!(observed, Observed::Aborted),
        Expectation::OkThenReject => match observed {
            Observed::Pipelined { first: 200, second } => matches!(
                second.as_ref(),
                Observed::Status { code: 400, .. } | Observed::Closed
            ),
            _ => false,
        },
        Expectation::ServedOrShed => {
            matches!(observed, Observed::Flood { other: 0, ok, .. } if *ok > 0)
        }
    }
}

/// Execute the byzantine script and classify what came back.
fn execute(target: &ChaosTarget, scenario: &Scenario) -> Observed {
    match scenario {
        Scenario::SlowLorisHeaders { byte_delay } => {
            let preamble = b"POST /v1/notebook HTTP/1.1\r\nHost: chaos\r\n".to_vec();
            let mut dribble = b"X-Dribble: ".to_vec();
            dribble.extend(std::iter::repeat(b'a').take(1 << 16));
            dribble_until_cut(target, &preamble, &dribble, *byte_delay)
        }
        Scenario::SlowLorisBody { byte_delay } => {
            let preamble = b"POST /v1/notebook HTTP/1.1\r\nHost: chaos\r\n\
                 Content-Type: application/json\r\nContent-Length: 4096\r\n\r\n"
                .to_vec();
            let dribble = vec![b'x'; 4096];
            dribble_until_cut(target, &preamble, &dribble, *byte_delay)
        }
        Scenario::MidRequestDisconnect => {
            let raw = target.notebook_raw(None);
            let half = raw.len() / 2;
            match connect(&target.addr, CLIENT_READ_TIMEOUT) {
                Ok(mut stream) => {
                    let _ = stream.write_all(&raw[..half]);
                    drop(stream); // vanish mid-request
                    Observed::Aborted
                }
                Err(e) => Observed::Transport(e),
            }
        }
        Scenario::MidResponseDisconnect => {
            let raw = target.notebook_raw(None);
            match connect(&target.addr, CLIENT_READ_TIMEOUT) {
                Ok(mut stream) => {
                    if let Err(e) = stream.write_all(&raw) {
                        return Observed::Transport(format!("write: {e}"));
                    }
                    // Read a sliver of the response head, then vanish. The
                    // unread remainder in our receive buffer turns the
                    // close into a reset the server's writer must absorb.
                    let mut sliver = [0u8; 16];
                    let _ = stream.read(&mut sliver);
                    drop(stream);
                    Observed::Aborted
                }
                Err(e) => Observed::Transport(e),
            }
        }
        Scenario::MalformedRequestLine => {
            send_then_read(target, b"THIS IS NOT HTTP AT ALL\r\n\r\n")
        }
        Scenario::OversizedHeader => {
            let mut raw = b"GET /v1/healthz HTTP/1.1\r\nHost: chaos\r\nX-Big: ".to_vec();
            raw.extend(std::iter::repeat(b'a').take(20 * 1024));
            raw.extend_from_slice(b"\r\n\r\n");
            send_then_read(target, &raw)
        }
        Scenario::HeaderFlood => {
            let mut raw = b"GET /v1/healthz HTTP/1.1\r\nHost: chaos\r\n".to_vec();
            for i in 0..4000 {
                raw.extend_from_slice(format!("X-Flood-{i}: v\r\n").as_bytes());
            }
            raw.extend_from_slice(b"\r\n");
            send_then_read(target, &raw)
        }
        Scenario::OversizedBody { declared } => {
            let raw = format!(
                "POST /v1/notebook HTTP/1.1\r\nHost: chaos\r\n\
                 Content-Length: {declared}\r\nConnection: close\r\n\r\n"
            );
            send_then_read(target, raw.as_bytes())
        }
        Scenario::TruncatedBody => {
            let raw = b"POST /v1/notebook HTTP/1.1\r\nHost: chaos\r\n\
                        Content-Type: application/json\r\nContent-Length: 100\r\n\r\n{\"data"
                .to_vec();
            // Send the stub, then go silent: the server's read deadline
            // must fire. Our read window extends past the server's bound
            // so a hung server is observed as ReadTimeout, not masked.
            match connect(&target.addr, target.request_timeout + 2 * DEADLINE_GRACE) {
                Ok(mut stream) => {
                    if let Err(e) = stream.write_all(&raw) {
                        return Observed::Transport(format!("write: {e}"));
                    }
                    read_outcome(&mut stream)
                }
                Err(e) => Observed::Transport(e),
            }
        }
        Scenario::PipelinedGarbage => {
            let mut raw = b"GET /v1/healthz HTTP/1.1\r\nHost: chaos\r\n\r\n".to_vec();
            raw.extend_from_slice(b"%%% pipelined garbage, not a request %%%\r\n\r\n");
            match connect(&target.addr, CLIENT_READ_TIMEOUT) {
                Ok(mut stream) => {
                    if let Err(e) = stream.write_all(&raw) {
                        return Observed::Transport(format!("write: {e}"));
                    }
                    match read_outcome(&mut stream) {
                        Observed::Status { code, .. } => Observed::Pipelined {
                            first: code,
                            second: Box::new(read_outcome(&mut stream)),
                        },
                        other => other,
                    }
                }
                Err(e) => Observed::Transport(e),
            }
        }
        Scenario::RequestFlood {
            tenant,
            connections,
        } => {
            let shots: Vec<_> = (0..*connections)
                .map(|_| {
                    let target = target.clone();
                    let tenant = tenant.clone();
                    std::thread::spawn(move || {
                        let mut stream = connect(&target.addr, CLIENT_READ_TIMEOUT).ok()?;
                        let raw = target.notebook_raw(Some(&tenant));
                        stream.write_all(&raw).ok()?;
                        Some(read_outcome(&mut stream))
                    })
                })
                .collect();
            let (mut ok, mut shed, mut other) = (0, 0, 0);
            for shot in shots {
                match shot.join().ok().flatten() {
                    Some(Observed::Status { code: 200, body }) if body == target.expected_body => {
                        ok += 1
                    }
                    Some(Observed::Status { code: 429, .. }) => shed += 1,
                    _ => other += 1,
                }
            }
            Observed::Flood { ok, shed, other }
        }
    }
}

/// Send a complete hostile frame, tolerating a mid-write cutoff (the
/// server may answer-and-reset before consuming everything), then read
/// whatever comes back.
fn send_then_read(target: &ChaosTarget, raw: &[u8]) -> Observed {
    match connect(&target.addr, CLIENT_READ_TIMEOUT) {
        Ok(mut stream) => {
            let _ = stream.write_all(raw);
            read_outcome(&mut stream)
        }
        Err(e) => Observed::Transport(e),
    }
}

/// The slow-loris core: write `preamble`, then dribble `dribble` one
/// byte per `byte_delay`, polling for a response between bytes. Returns
/// as soon as the server answers or cuts the connection; gives up (and
/// reports [`Observed::ReadTimeout`]) if the server tolerates the
/// dribble past its own deadline + grace — that is the failure mode this
/// scenario exists to catch.
fn dribble_until_cut(
    target: &ChaosTarget,
    preamble: &[u8],
    dribble: &[u8],
    byte_delay: Duration,
) -> Observed {
    let give_up = target.request_timeout + DEADLINE_GRACE;
    let mut stream = match connect(&target.addr, Duration::from_millis(10)) {
        Ok(s) => s,
        Err(e) => return Observed::Transport(e),
    };
    if let Err(e) = stream.write_all(preamble) {
        return Observed::Transport(format!("preamble write: {e}"));
    }
    let started = Instant::now();
    let mut response = Vec::new();
    let mut chunk = [0u8; 4096];
    for byte in dribble {
        if started.elapsed() > give_up {
            // The server never cut us off: the slow-loris defense failed.
            return Observed::ReadTimeout;
        }
        std::thread::sleep(byte_delay);
        let write_failed = stream.write_all(std::slice::from_ref(byte)).is_err();
        // Poll (10 ms read timeout) for an early 408 between bytes.
        match stream.read(&mut chunk) {
            Ok(0) => {
                return match try_parse_response(&response) {
                    Some((code, body)) => Observed::Status { code, body },
                    None => Observed::Closed,
                }
            }
            Ok(n) => {
                response.extend_from_slice(&chunk[..n]);
                if let Some((code, body)) = try_parse_response(&response) {
                    return Observed::Status { code, body };
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => {
                return match try_parse_response(&response) {
                    Some((code, body)) => Observed::Status { code, body },
                    None => Observed::Closed,
                }
            }
        }
        if write_failed {
            return match try_parse_response(&response) {
                Some((code, body)) => Observed::Status { code, body },
                None => Observed::Closed,
            };
        }
    }
    Observed::Transport("dribble source exhausted before the server reacted".into())
}

// ---- good-client latency under attack ----------------------------------

/// Latency quantiles of a set of good-client exchanges.
#[derive(Debug, Clone, Serialize)]
pub struct LatencySummary {
    pub requests: usize,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
}

/// Nearest-rank quantile over a sorted slice.
pub fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Summarize (and sort) a latency sample.
pub fn latency_summary(latencies: &mut Vec<Duration>) -> LatencySummary {
    latencies.sort();
    let mean_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().map(Duration::as_secs_f64).sum::<f64>() * 1e3 / latencies.len() as f64
    };
    LatencySummary {
        requests: latencies.len(),
        mean_ms,
        p50_ms: quantile(latencies, 0.50).as_secs_f64() * 1e3,
        p95_ms: quantile(latencies, 0.95).as_secs_f64() * 1e3,
        p99_ms: quantile(latencies, 0.99).as_secs_f64() * 1e3,
    }
}

/// A background good-traffic loop: byte-identity-checked requests until
/// [`GoodTraffic::stop`], collecting latencies and divergences.
pub struct GoodTraffic {
    stop: Arc<AtomicBool>,
    divergences: Arc<AtomicUsize>,
    latencies: Arc<Mutex<Vec<Duration>>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl GoodTraffic {
    /// Start the loop against `target`, pausing `pace` between shots.
    pub fn start(target: ChaosTarget, pace: Duration) -> GoodTraffic {
        let stop = Arc::new(AtomicBool::new(false));
        let divergences = Arc::new(AtomicUsize::new(0));
        let latencies = Arc::new(Mutex::new(Vec::new()));
        let thread = {
            let stop = Arc::clone(&stop);
            let divergences = Arc::clone(&divergences);
            let latencies = Arc::clone(&latencies);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match target.good_shot() {
                        Ok(latency) => latencies
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push(latency),
                        Err(_) => {
                            divergences.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    std::thread::sleep(pace);
                }
            })
        };
        GoodTraffic {
            stop,
            divergences,
            latencies,
            thread: Some(thread),
        }
    }

    /// Stop the loop; returns `(latencies, failed_or_divergent_shots)`.
    pub fn stop(mut self) -> (Vec<Duration>, usize) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let latencies = std::mem::take(
            &mut *self
                .latencies
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        (latencies, self.divergences.load(Ordering::SeqCst))
    }
}

// ---- soak --------------------------------------------------------------

/// Soak-run knobs.
pub struct SoakOptions {
    /// How long to sustain the mixed workload.
    pub duration: Duration,
    /// Max allowed growth of `server.mem.rss_bytes` between the first
    /// and the largest sample.
    pub rss_budget_bytes: u64,
    /// `(request_body, expected_response_body)` pairs cycled by the good
    /// clients; distinct seeds keep the display cache churning.
    pub good_requests: Vec<(String, String)>,
    /// Base CSV for the upload churn (rotated per shot so fingerprints
    /// differ and the registry evicts at capacity). `None` disables it.
    pub upload_csv: Option<String>,
    /// Metrics sampling interval.
    pub sample_every: Duration,
}

/// What the soak run measured, persisted under `soak` in
/// `BENCH_chaos.json`.
#[derive(Debug, Clone, Serialize)]
pub struct SoakReport {
    pub duration_secs: f64,
    pub good_requests: usize,
    /// Good shots that failed or diverged from the offline decode.
    pub divergences: usize,
    pub byzantine_shots: usize,
    pub uploads_attempted: usize,
    pub rss_first_bytes: Option<u64>,
    pub rss_max_bytes: Option<u64>,
    pub rss_last_bytes: Option<u64>,
    pub rss_growth_bytes: u64,
    pub rss_budget_bytes: u64,
    pub counters_monotone: bool,
    pub evictions_delta: u64,
    pub metrics_samples: usize,
    pub failures: Vec<String>,
    pub pass: bool,
}

/// Counters whose monotonicity the soak sampler enforces.
const MONOTONE_COUNTERS: &[&str] = &[
    "server.http.requests",
    "server.http.parse_errors",
    "server.connections",
    "registry.uploads",
    "registry.evictions",
    "server.cache.hits",
    "server.cache.misses",
];

/// Sustain mixed good/byzantine traffic against `target` for
/// `options.duration`: two good-client loops (byte-identity checked), a
/// fast-byzantine loop, a dedicated slow-loris dribbler, and an upload
/// churner keeping the registry at capacity. A sampler polls
/// `/v1/metrics` for the RSS gauge and monotone counters throughout.
pub fn run_soak(target: &ChaosTarget, options: &SoakOptions) -> SoakReport {
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();

    // Good traffic: cycle the seed set so the display cache and response
    // cache churn instead of serving one hot entry.
    let good_count = Arc::new(AtomicUsize::new(0));
    let divergences = Arc::new(AtomicUsize::new(0));
    let good_threads: Vec<_> = (0..2)
        .map(|offset| {
            let stop = Arc::clone(&stop);
            let good_count = Arc::clone(&good_count);
            let divergences = Arc::clone(&divergences);
            let target = target.clone();
            let requests = options.good_requests.clone();
            std::thread::spawn(move || {
                let mut i = offset;
                while !stop.load(Ordering::SeqCst) {
                    let (body, expected) = &requests[i % requests.len()];
                    i += 1;
                    let mut shot = target.clone();
                    shot.good_body = body.clone();
                    shot.expected_body = expected.clone();
                    match shot.good_shot() {
                        Ok(_) => {
                            good_count.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(_) => {
                            divergences.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        })
        .collect();

    // Fast byzantine churn: malformed, oversized, pipelined, aborts.
    let byzantine_count = Arc::new(AtomicUsize::new(0));
    let byz_thread = {
        let stop = Arc::clone(&stop);
        let byzantine_count = Arc::clone(&byzantine_count);
        let target = target.clone();
        std::thread::spawn(move || {
            let scripts = [
                Scenario::MalformedRequestLine,
                Scenario::OversizedHeader,
                Scenario::PipelinedGarbage,
                Scenario::MidRequestDisconnect,
                Scenario::OversizedBody {
                    declared: target.max_body_bytes + 1,
                },
                Scenario::MidResponseDisconnect,
            ];
            let mut i = 0;
            while !stop.load(Ordering::SeqCst) {
                let _ = execute(&target, &scripts[i % scripts.len()]);
                i += 1;
                byzantine_count.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(20));
            }
        })
    };

    // One dedicated slow-loris dribbler reconnecting for the whole soak.
    let loris_thread = {
        let stop = Arc::clone(&stop);
        let target = target.clone();
        std::thread::spawn(move || {
            let byte_delay = (target.request_timeout / 10).max(Duration::from_millis(10));
            while !stop.load(Ordering::SeqCst) {
                let _ = execute(&target, &Scenario::SlowLorisHeaders { byte_delay });
            }
        })
    };

    // Upload churn: rotate CSV content so every upload is a distinct
    // fingerprint and the registry evicts at capacity.
    let uploads_attempted = Arc::new(AtomicUsize::new(0));
    let upload_thread = options.upload_csv.clone().map(|base| {
        let stop = Arc::clone(&stop);
        let uploads_attempted = Arc::clone(&uploads_attempted);
        let target = target.clone();
        std::thread::spawn(move || {
            let mut tag = 0usize;
            while !stop.load(Ordering::SeqCst) {
                let csv = format!("{base}tag{tag},{tag}\n");
                tag += 1;
                let raw = format!(
                    "POST /v1/datasets?name=soak{tag} HTTP/1.1\r\nHost: chaos\r\n\
                     X-Atena-Tenant: soaker{}\r\nContent-Type: text/csv\r\n\
                     Content-Length: {}\r\nConnection: close\r\n\r\n{csv}",
                    tag % 4,
                    csv.len()
                );
                if let Ok(mut stream) = connect(&target.addr, CLIENT_READ_TIMEOUT) {
                    if stream.write_all(raw.as_bytes()).is_ok() {
                        let _ = read_outcome(&mut stream);
                    }
                }
                uploads_attempted.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    });

    // Sampler: RSS gauge, monotone counters, eviction progress.
    let mut failures: Vec<String> = Vec::new();
    let mut rss_first = None;
    let mut rss_max: Option<u64> = None;
    let mut rss_last = None;
    let mut counters_monotone = true;
    let mut prev_counters: std::collections::HashMap<String, u64> = Default::default();
    let mut evictions_first: Option<u64> = None;
    let mut evictions_last: u64 = 0;
    let mut samples = 0usize;
    while started.elapsed() < options.duration {
        std::thread::sleep(options.sample_every);
        let metrics = match target.metrics() {
            Ok(m) => m,
            Err(e) => {
                failures.push(format!("metrics scrape failed: {e}"));
                continue;
            }
        };
        samples += 1;
        if let Some(rss) = metrics["gauges"]["server.mem.rss_bytes"].as_f64() {
            let rss = rss as u64;
            rss_first.get_or_insert(rss);
            rss_max = Some(rss_max.map_or(rss, |m: u64| m.max(rss)));
            rss_last = Some(rss);
        }
        for name in MONOTONE_COUNTERS {
            let now = metrics["counters"][*name].as_u64().unwrap_or(0);
            let prev = prev_counters.insert((*name).to_string(), now).unwrap_or(0);
            if now < prev {
                counters_monotone = false;
                failures.push(format!("counter {name} went backwards: {prev} -> {now}"));
            }
        }
        let evictions = metrics["counters"]["registry.evictions"]
            .as_u64()
            .unwrap_or(0);
        evictions_first.get_or_insert(evictions);
        evictions_last = evictions;
    }

    stop.store(true, Ordering::SeqCst);
    for t in good_threads {
        let _ = t.join();
    }
    let _ = byz_thread.join();
    let _ = loris_thread.join();
    if let Some(t) = upload_thread {
        let _ = t.join();
    }

    let good_requests = good_count.load(Ordering::SeqCst);
    let divergences = divergences.load(Ordering::SeqCst);
    let rss_growth = match (rss_first, rss_max) {
        (Some(first), Some(max)) => max.saturating_sub(first),
        _ => 0,
    };
    if divergences > 0 {
        failures.push(format!(
            "{divergences} good shots failed or diverged from the offline decode"
        ));
    }
    if good_requests == 0 {
        failures.push("no good requests completed during the soak".into());
    }
    if rss_first.is_none() {
        failures.push("server.mem.rss_bytes gauge never appeared in /v1/metrics".into());
    } else if rss_growth > options.rss_budget_bytes {
        failures.push(format!(
            "RSS grew {rss_growth} bytes, over the {} byte budget",
            options.rss_budget_bytes
        ));
    }
    let evictions_delta = evictions_last.saturating_sub(evictions_first.unwrap_or(0));
    if options.upload_csv.is_some() && evictions_delta == 0 {
        failures.push("registry at capacity produced no evictions during the soak".into());
    }
    SoakReport {
        duration_secs: started.elapsed().as_secs_f64(),
        good_requests,
        divergences,
        byzantine_shots: byzantine_count.load(Ordering::SeqCst),
        uploads_attempted: uploads_attempted.load(Ordering::SeqCst),
        rss_first_bytes: rss_first,
        rss_max_bytes: rss_max,
        rss_last_bytes: rss_last,
        rss_growth_bytes: rss_growth,
        rss_budget_bytes: options.rss_budget_bytes,
        counters_monotone,
        evictions_delta,
        metrics_samples: samples,
        pass: failures.is_empty(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_parser_handles_split_and_complete_frames() {
        let full = b"HTTP/1.1 404 Not Found\r\nContent-Length: 5\r\n\r\nhello";
        assert_eq!(try_parse_response(full), Some((404, "hello".to_string())));
        // Body not yet complete → keep reading.
        assert_eq!(
            try_parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhel"),
            None
        );
        // No blank line yet → keep reading.
        assert_eq!(try_parse_response(b"HTTP/1.1 200 OK\r\n"), None);
        // No Content-Length → empty body.
        assert_eq!(
            try_parse_response(b"HTTP/1.1 204 No Content\r\n\r\n"),
            Some((204, String::new()))
        );
    }

    #[test]
    fn every_scenario_has_a_typed_expectation_and_stable_name() {
        let target = ChaosTarget {
            addr: "127.0.0.1:1".into(),
            good_body: "{}".into(),
            expected_body: String::new(),
            request_timeout: Duration::from_secs(2),
            max_body_bytes: 1024,
        };
        let matrix = scenario_matrix(&target);
        assert_eq!(matrix.len(), 11);
        let mut names: Vec<&str> = matrix.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11, "scenario names must be unique");
        for scenario in &matrix {
            // Display must never panic and must be non-empty.
            assert!(!scenario.expected().to_string().is_empty());
        }
    }

    #[test]
    fn expectation_matching_is_strict() {
        let target = ChaosTarget {
            addr: "127.0.0.1:1".into(),
            good_body: "{}".into(),
            expected_body: String::new(),
            request_timeout: Duration::from_millis(100),
            max_body_bytes: 1024,
        };
        let status = |code| Observed::Status {
            code,
            body: String::new(),
        };
        let fast = Duration::from_millis(50);
        assert!(matches(
            &Expectation::Status(400),
            &status(400),
            fast,
            &target
        ));
        assert!(!matches(
            &Expectation::Status(400),
            &status(500),
            fast,
            &target
        ));
        assert!(!matches(
            &Expectation::Status(400),
            &Observed::Closed,
            fast,
            &target
        ));
        // TimeoutOrClose accepts 408/close only when bounded.
        assert!(matches(
            &Expectation::TimeoutOrClose,
            &status(408),
            fast,
            &target
        ));
        assert!(matches(
            &Expectation::TimeoutOrClose,
            &Observed::Closed,
            fast,
            &target
        ));
        let late = Duration::from_secs(60);
        assert!(!matches(
            &Expectation::TimeoutOrClose,
            &status(408),
            late,
            &target
        ));
        assert!(!matches(
            &Expectation::TimeoutOrClose,
            &Observed::ReadTimeout,
            fast,
            &target
        ));
        // Pipelined: 200 then 400-or-close.
        let pipelined = |second| Observed::Pipelined {
            first: 200,
            second: Box::new(second),
        };
        assert!(matches(
            &Expectation::OkThenReject,
            &pipelined(status(400)),
            fast,
            &target
        ));
        assert!(matches(
            &Expectation::OkThenReject,
            &pipelined(Observed::Closed),
            fast,
            &target
        ));
        assert!(!matches(
            &Expectation::OkThenReject,
            &pipelined(status(200)),
            fast,
            &target
        ));
        assert!(!matches(
            &Expectation::OkThenReject,
            &status(200),
            fast,
            &target
        ));
        // Flood: any non-200/429 outcome fails; zero successes fail.
        let flood = |ok, shed, other| Observed::Flood { ok, shed, other };
        assert!(matches(
            &Expectation::ServedOrShed,
            &flood(3, 13, 0),
            fast,
            &target
        ));
        assert!(!matches(
            &Expectation::ServedOrShed,
            &flood(3, 12, 1),
            fast,
            &target
        ));
        assert!(!matches(
            &Expectation::ServedOrShed,
            &flood(0, 16, 0),
            fast,
            &target
        ));
    }

    #[test]
    fn quantiles_and_summary() {
        let mut lat: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let summary = latency_summary(&mut lat);
        assert_eq!(summary.requests, 100);
        assert!((summary.p50_ms - 50.0).abs() <= 1.0);
        assert!((summary.p99_ms - 99.0).abs() <= 1.0);
        assert!(summary.mean_ms > 49.0 && summary.mean_ms < 52.0);
        let mut empty = Vec::new();
        let summary = latency_summary(&mut empty);
        assert_eq!(summary.requests, 0);
        assert_eq!(summary.p99_ms, 0.0);
    }
}
