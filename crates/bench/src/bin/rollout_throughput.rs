//! Rollout-throughput driver for the `atena-runtime` scatter engine:
//! collects identical rollout iterations at several worker counts — each
//! both with and without the shared display cache — and reports steps/sec,
//! the speedup over one worker, and the cache's hit rate and speedup,
//! while asserting the determinism contract (every worker count and cache
//! configuration must produce bit-identical trajectories).
//!
//! ```text
//! rollout_throughput [--dataset flights1] [--lanes 8] [--rollout-len 96]
//!                    [--iters 5] [--workers 1,2,4,8] [--cache 4096]
//!                    [--seed 0] [--bench-out BENCH_rollout.json]
//! ```
//!
//! The run also measures span-tracing overhead: one extra sweep pair at the
//! highest worker count with the tracer off and on, asserting bit-identical
//! trajectories (tracing is execution-only, DESIGN.md §4j) and reporting
//! the steps/sec regression against a 3% budget.
//!
//! With `$ATENA_METRICS_OUT` set, telemetry (including the `env.cache.*`
//! hit/miss/eviction counters) streams to that file as JSONL. With
//! `--bench-out`, the full result set persists as a versioned JSON record
//! (the CI perf-trajectory artifact).
//!
//! Note: the speedup column only shows >1 on multi-core machines; the
//! determinism check is meaningful everywhere.

use atena_batch::BatchPlanner;
use atena_bench::{f2, finish_telemetry, init_telemetry, render_table};
use atena_core::{Atena, AtenaConfig, Strategy};
use atena_env::{DisplayCache, DisplayCacheStats, EdaEnv};
use atena_rl::{
    ActionMapper, ParallelRollouts, Policy, RolloutPlan, RolloutSource, TwofoldConfig,
    TwofoldPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Config {
    dataset: String,
    lanes: usize,
    rollout_len: usize,
    iters: u64,
    workers: Vec<usize>,
    cache: usize,
    temperature: f32,
    decode_episodes: u64,
    decode_seeds: u64,
    seed: u64,
    bench_out: Option<String>,
    batch_sizes: Vec<usize>,
    batch_bench_out: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            dataset: "flights1".into(),
            lanes: 8,
            rollout_len: 96,
            iters: 5,
            workers: vec![1, 2, 4, 8],
            cache: 4096,
            temperature: 1.0,
            decode_episodes: 48,
            decode_seeds: 4,
            seed: 0,
            bench_out: None,
            batch_sizes: vec![1, 4, 8],
            batch_bench_out: None,
        }
    }
}

/// Steps/sec regression budget for span tracing (acceptance gate: tracing
/// must stay cheap enough to leave on in perf-sensitive runs).
const TRACING_BUDGET_PCT: f64 = 3.0;

#[derive(serde::Serialize)]
struct SweepRecord {
    workers: usize,
    steps_per_sec: f64,
    cached_steps_per_sec: f64,
    cache_speedup: f64,
    scaling: f64,
    cache_hit_rate: f64,
    digest: String,
}

#[derive(serde::Serialize)]
struct DecodeRecord {
    episodes: u64,
    seed_pool: u64,
    steps_per_sec_uncached: f64,
    steps_per_sec_cached: f64,
    cache_speedup: f64,
    cache_hit_rate: f64,
    digest_match: bool,
}

#[derive(serde::Serialize)]
struct TracingRecord {
    workers: usize,
    steps_per_sec_off: f64,
    steps_per_sec_on: f64,
    overhead_pct: f64,
    budget_pct: f64,
    within_budget: bool,
    spans_recorded: u64,
    digest_match: bool,
}

#[derive(serde::Serialize)]
struct BatchSweepRecord {
    batch: usize,
    steps_per_sec: f64,
    speedup_vs_batch1: f64,
    /// End-to-end speedup over the pre-batching decode engine (per-step
    /// autodiff graph with weight snapshots), env stepping included.
    speedup_vs_graph: f64,
    /// Policy rows pushed through the inference engine per second of
    /// forward time — the engine-only number, undiluted by env stepping.
    forward_rows_per_sec: f64,
    /// `forward_rows_per_sec` over the graph engine's — the acceptance
    /// number for the batched-inference subsystem itself.
    forward_speedup_vs_graph: f64,
    forward_p50_us: f64,
    forward_p95_us: f64,
    forward_p99_us: f64,
    digest: String,
}

/// The persisted `BENCH_batch.json` schema (`version` guards consumers
/// against silent shape drift): steps/sec and per-forward latency
/// quantiles of the lane-batched greedy decode replay vs batch size,
/// with the pre-batching graph engine as the reference row.
#[derive(serde::Serialize)]
struct BatchBenchRecord {
    version: u32,
    bench: &'static str,
    dataset: String,
    episodes: u64,
    seed_pool: u64,
    episode_len: usize,
    cache: usize,
    /// The pre-batching engine (graph-based `act`) on the same workload.
    graph_steps_per_sec: f64,
    /// The graph engine's inference-only throughput (rows through
    /// `act_via_graph` per second of forward time).
    graph_forward_rows_per_sec: f64,
    sweeps: Vec<BatchSweepRecord>,
    determinism_ok: bool,
}

/// The persisted `BENCH_rollout.json` schema (`version` guards consumers
/// against silent shape drift).
#[derive(serde::Serialize)]
struct BenchRecord {
    version: u32,
    bench: &'static str,
    dataset: String,
    lanes: usize,
    rollout_len: usize,
    iters: u64,
    total_steps: usize,
    sweeps: Vec<SweepRecord>,
    decode: DecodeRecord,
    tracing: TracingRecord,
    determinism_ok: bool,
}

const USAGE: &str = "\
rollout_throughput — steps/sec of the deterministic rollout engine

USAGE:
  rollout_throughput [--dataset ID] [--lanes N] [--rollout-len N]
                     [--iters N] [--workers 1,2,4,8] [--cache N]
                     [--temperature T] [--decode-episodes N]
                     [--decode-seeds N] [--seed N]
                     [--bench-out BENCH_rollout.json]
                     [--batch-sizes 1,4,8]
                     [--batch-bench-out BENCH_batch.json]
";

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut config = Config::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value\n\n{USAGE}"))?;
        match flag {
            "--dataset" => config.dataset = value.clone(),
            "--lanes" => config.lanes = value.parse().map_err(|_| "--lanes: integer expected")?,
            "--rollout-len" => {
                config.rollout_len = value
                    .parse()
                    .map_err(|_| "--rollout-len: integer expected")?
            }
            "--iters" => config.iters = value.parse().map_err(|_| "--iters: integer expected")?,
            "--cache" => config.cache = value.parse().map_err(|_| "--cache: integer expected")?,
            "--temperature" => {
                config.temperature = value
                    .parse()
                    .map_err(|_| "--temperature: number expected")?
            }
            "--decode-episodes" => {
                config.decode_episodes = value
                    .parse()
                    .map_err(|_| "--decode-episodes: integer expected")?
            }
            "--decode-seeds" => {
                config.decode_seeds = value
                    .parse()
                    .map_err(|_| "--decode-seeds: non-zero integer expected")
                    .and_then(|v| {
                        if v == 0 {
                            Err("--decode-seeds: must be non-zero")
                        } else {
                            Ok(v)
                        }
                    })?
            }
            "--seed" => config.seed = value.parse().map_err(|_| "--seed: integer expected")?,
            "--bench-out" => config.bench_out = Some(value.clone()),
            "--batch-sizes" => {
                config.batch_sizes = value
                    .split(',')
                    .map(|b| {
                        b.trim()
                            .parse()
                            .map_err(|_| "--batch-sizes: integers expected")
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--batch-bench-out" => config.batch_bench_out = Some(value.clone()),
            "--workers" => {
                config.workers = value
                    .split(',')
                    .map(|w| w.trim().parse().map_err(|_| "--workers: integers expected"))
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
        i += 2;
    }
    if config.workers.is_empty() {
        return Err("--workers needs at least one count".into());
    }
    if config.batch_sizes.is_empty() || config.batch_sizes.contains(&0) {
        return Err("--batch-sizes needs positive batch sizes".into());
    }
    Ok(config)
}

/// Duration quantile over a sorted sample.
fn quantile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)].as_secs_f64() * 1e6
}

/// One timed sweep at a worker count and display-cache capacity; returns
/// (secs, trajectory digest, cache stats). The digest folds every step
/// reward in buffer order, so two sweeps with equal digests collected the
/// same trajectories in the same order.
fn sweep(
    frame: &atena_dataframe::DataFrame,
    env_config: &atena_env::EnvConfig,
    plan_parts: &PlanParts,
    config: &Config,
    workers: usize,
    cache_capacity: usize,
    traced: bool,
) -> (f64, u64, DisplayCacheStats) {
    let mut source = ParallelRollouts::with_cache_capacity(
        frame,
        env_config,
        config.lanes,
        config.seed,
        workers,
        cache_capacity,
    );
    let start = Instant::now();
    let mut digest = 0u64;
    for iteration in 0..config.iters {
        let plan = RolloutPlan {
            policy: plan_parts.policy.as_ref(),
            mapper: &plan_parts.mapper,
            reward: plan_parts.reward.as_ref(),
            rollout_len: config.rollout_len,
            temperature: config.temperature,
            base_seed: config.seed,
            iteration,
        };
        // The traced path mirrors the trainer's per-iteration span tree
        // (DESIGN.md §4j): a root with a timed collect span plus exact-
        // duration worker/merge children from the scatter profile.
        let trace = traced.then(|| {
            let t = atena_telemetry::tracer().trace("rollout.iteration");
            t.attr("iter", iteration.to_string());
            t
        });
        let buffer = match &trace {
            Some(trace) => {
                let collect = trace.span("rollout.collect");
                let collect_id = collect.id();
                let (buffer, _episodes) = source.collect(&plan);
                drop(collect);
                if trace.is_recording() {
                    if let Some(profile) = source.scatter_profile() {
                        for (w, wp) in profile.workers.iter().enumerate() {
                            trace.record_exact(
                                collect_id,
                                "rollout.worker",
                                wp.busy_secs,
                                vec![("worker", w.to_string()), ("lanes", wp.items.to_string())],
                            );
                        }
                        trace.record_exact(collect_id, "rollout.merge", profile.merge_secs, vec![]);
                    }
                }
                buffer
            }
            None => source.collect(&plan).0,
        };
        for step in buffer.steps() {
            digest = digest
                .rotate_left(7)
                .wrapping_add(u64::from(step.reward.to_bits()));
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = source
        .display_cache()
        .map(|c| c.stats())
        .unwrap_or_default();
    (secs, digest, stats)
}

struct PlanParts {
    policy: Arc<TwofoldPolicy>,
    mapper: ActionMapper,
    reward: Arc<dyn atena_env::RewardModel>,
}

/// One timed greedy-decode replay sweep — the inference server's workload:
/// `episodes` episodes decoded at near-zero temperature, cycling through a
/// pool of `seed_pool` request seeds, so every seed after the first pass
/// replays an identical operation path. This is the workload the display
/// cache is designed for (cross-request reuse); the digest folds every
/// observation bit of every step, so cached and uncached replays must be
/// bit-identical.
fn decode_sweep(
    frame: &atena_dataframe::DataFrame,
    env_config: &atena_env::EnvConfig,
    policy: &TwofoldPolicy,
    cache_capacity: usize,
    episodes: u64,
    seed_pool: u64,
) -> (f64, u64, u64, DisplayCacheStats) {
    const DECODE_TEMPERATURE: f32 = 1e-3;
    let cache = (cache_capacity > 0).then(|| Arc::new(DisplayCache::new(cache_capacity)));
    let mut env = EdaEnv::new(frame.clone(), env_config.clone());
    if let Some(cache) = &cache {
        env = env.with_display_cache(Arc::clone(cache));
    }
    let start = Instant::now();
    let mut digest = 0u64;
    let mut steps = 0u64;
    for episode in 0..episodes {
        let seed = episode % seed_pool;
        env.reset_with_seed(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        while !env.done() {
            let obs = env.observation();
            let step = policy.act(&obs, DECODE_TEMPERATURE, &mut rng);
            let action = step
                .choice
                .to_eda_action()
                .expect("twofold policy emits twofold choices");
            let transition = env.step(&action);
            steps += 1;
            for x in &transition.observation {
                digest = digest.rotate_left(7).wrapping_add(u64::from(x.to_bits()));
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let stats = cache.map(|c| c.stats()).unwrap_or_default();
    (secs, digest, steps, stats)
}

/// The same decode-replay workload through the *pre-batching* engine —
/// `TwofoldPolicy::act_via_graph`, one fresh autodiff graph and a full
/// set of weight snapshots per step — digested with the same per-episode
/// commutative scheme as [`batched_decode_sweep`], so its digest must
/// equal every batched digest (the graph path is the bit-identity oracle).
/// Returns (secs, digest, steps).
fn graph_reference_sweep(
    frame: &atena_dataframe::DataFrame,
    env_config: &atena_env::EnvConfig,
    policy: &TwofoldPolicy,
    cache_capacity: usize,
    episodes: u64,
    seed_pool: u64,
) -> (f64, u64, u64, Duration) {
    const DECODE_TEMPERATURE: f32 = 1e-3;
    let cache = (cache_capacity > 0).then(|| Arc::new(DisplayCache::new(cache_capacity)));
    let mut env = EdaEnv::new(frame.clone(), env_config.clone());
    if let Some(cache) = &cache {
        env = env.with_display_cache(Arc::clone(cache));
    }
    let start = Instant::now();
    let mut digest = 0u64;
    let mut steps = 0u64;
    let mut forward_total = Duration::ZERO;
    for episode in 0..episodes {
        let seed = episode % seed_pool;
        env.reset_with_seed(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ep_digest = 0u64;
        while !env.done() {
            let obs = env.observation();
            let forward_start = Instant::now();
            let step = policy.act_via_graph(&obs, DECODE_TEMPERATURE, &mut rng);
            forward_total += forward_start.elapsed();
            let action = step
                .choice
                .to_eda_action()
                .expect("twofold policy emits twofold choices");
            let transition = env.step(&action);
            steps += 1;
            for x in &transition.observation {
                ep_digest = ep_digest
                    .rotate_left(7)
                    .wrapping_add(u64::from(x.to_bits()));
            }
        }
        digest = digest.wrapping_add(ep_digest);
    }
    (start.elapsed().as_secs_f64(), digest, steps, forward_total)
}

/// Lane-batched greedy decode replay: `batch` environments decode the
/// same episode workload in lockstep, every step advancing all lanes
/// through one `[batch, obs_dim]` policy forward. Episodes are assigned
/// to lanes in rounds (lane `l` of round `r` decodes episode `r·batch +
/// l`), and each episode's transcript is digested independently then
/// combined commutatively — so the digest depends only on the *set* of
/// decoded episodes, which lets any batch size be compared bit-for-bit
/// against batch 1 (the serial schedule).
///
/// Returns (secs, digest, steps, per-forward latencies).
fn batched_decode_sweep(
    frame: &atena_dataframe::DataFrame,
    env_config: &atena_env::EnvConfig,
    policy: &TwofoldPolicy,
    cache_capacity: usize,
    episodes: u64,
    seed_pool: u64,
    batch: usize,
) -> (f64, u64, u64, Vec<Duration>) {
    const DECODE_TEMPERATURE: f32 = 1e-3;
    let batch = batch.max(1);
    let cache = (cache_capacity > 0).then(|| Arc::new(DisplayCache::new(cache_capacity)));
    let base = Arc::new(frame.clone());
    let mut envs: Vec<EdaEnv> = (0..batch)
        .map(|_| {
            let mut env = EdaEnv::with_shared_base(Arc::clone(&base), env_config.clone());
            if let Some(cache) = &cache {
                env = env.with_display_cache(Arc::clone(cache));
            }
            env
        })
        .collect();
    let planner = BatchPlanner::new(policy.obs_dim(), batch);
    let start = Instant::now();
    let mut digest = 0u64;
    let mut steps = 0u64;
    let mut forward_lat = Vec::new();
    let mut next_episode = 0u64;
    while next_episode < episodes {
        let active = (episodes - next_episode).min(batch as u64) as usize;
        let mut rngs = Vec::with_capacity(active);
        let mut ep_digests = vec![0u64; active];
        for (l, env) in envs[..active].iter_mut().enumerate() {
            let seed = (next_episode + l as u64) % seed_pool;
            env.reset_with_seed(seed);
            rngs.push(StdRng::seed_from_u64(seed));
        }
        // All lanes share the episode length, so they finish in lockstep.
        while !envs[0].done() {
            let obs: Vec<Vec<f32>> = envs[..active].iter().map(|e| e.observation()).collect();
            let forward_start = Instant::now();
            let rows = planner.run(&obs, |b| {
                policy
                    .forward_rows(b, DECODE_TEMPERATURE)
                    .expect("policy accepts gathered observations")
            });
            forward_lat.push(forward_start.elapsed());
            for (l, row) in rows.into_iter().enumerate() {
                let step = row.sample(&mut rngs[l]);
                let action = step
                    .choice
                    .to_eda_action()
                    .expect("twofold policy emits twofold choices");
                let transition = envs[l].step(&action);
                steps += 1;
                for x in &transition.observation {
                    ep_digests[l] = ep_digests[l]
                        .rotate_left(7)
                        .wrapping_add(u64::from(x.to_bits()));
                }
            }
        }
        for d in ep_digests {
            digest = digest.wrapping_add(d);
        }
        next_episode += active as u64;
    }
    (start.elapsed().as_secs_f64(), digest, steps, forward_lat)
}

fn main() {
    init_telemetry("rollout_throughput");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let Some(dataset) = atena_data::dataset_by_id(&config.dataset) else {
        eprintln!("unknown dataset {:?}", config.dataset);
        std::process::exit(2);
    };
    let focal = dataset.focal_attrs();
    let frame = dataset.frame;

    let mut atena_config = AtenaConfig::quick();
    atena_config.env.seed = config.seed;
    atena_config.probe_steps = 120;
    let reward: Arc<dyn atena_env::RewardModel> = Arc::new(
        Atena::new(&config.dataset, frame.clone())
            .with_focal_attrs(focal)
            .with_config(atena_config.clone())
            .with_strategy(Strategy::Atena)
            .build_reward(),
    );
    let probe = EdaEnv::new(frame.clone(), atena_config.env.clone());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let policy = Arc::new(TwofoldPolicy::new(
        probe.observation_dim(),
        probe.action_space().head_sizes(),
        TwofoldConfig { hidden: [64, 64] },
        &mut rng,
    ));
    let plan_parts = PlanParts {
        policy,
        mapper: ActionMapper::Twofold,
        reward,
    };

    let total_steps = config.lanes * config.rollout_len * config.iters as usize;
    println!(
        "rollout throughput on {:?}: {} lanes × {} steps × {} iters = {} env steps per sweep (display cache: {})",
        config.dataset, config.lanes, config.rollout_len, config.iters, total_steps, config.cache
    );

    let mut rows = Vec::new();
    let mut sweep_records = Vec::new();
    let mut baseline = None;
    let mut digests: Vec<(String, u64)> = Vec::new();
    for &workers in &config.workers {
        let (plain_secs, plain_digest, _) = sweep(
            &frame,
            &atena_config.env,
            &plan_parts,
            &config,
            workers,
            0,
            false,
        );
        let (cached_secs, cached_digest, stats) = sweep(
            &frame,
            &atena_config.env,
            &plan_parts,
            &config,
            workers,
            config.cache,
            false,
        );
        digests.push((format!("workers={workers} uncached"), plain_digest));
        digests.push((format!("workers={workers} cached"), cached_digest));
        let plain_sps = total_steps as f64 / plain_secs.max(1e-9);
        let cached_sps = total_steps as f64 / cached_secs.max(1e-9);
        let baseline_sps = *baseline.get_or_insert(cached_sps);
        sweep_records.push(SweepRecord {
            workers,
            steps_per_sec: plain_sps,
            cached_steps_per_sec: cached_sps,
            cache_speedup: cached_sps / plain_sps,
            scaling: cached_sps / baseline_sps,
            cache_hit_rate: stats.hit_rate(),
            digest: format!("{cached_digest:016x}"),
        });
        rows.push(vec![
            workers.to_string(),
            f2(plain_sps),
            f2(cached_sps),
            f2(cached_sps / plain_sps),
            f2(cached_sps / baseline_sps),
            format!("{:.1}%", 100.0 * stats.hit_rate()),
            format!("{cached_digest:016x}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "workers",
                "steps/sec",
                "cached steps/sec",
                "cache speedup",
                "scaling",
                "hit rate",
                "trajectory digest"
            ],
            &rows
        )
    );

    let reference = digests[0].1;
    let divergent: Vec<&str> = digests
        .iter()
        .filter(|(_, d)| *d != reference)
        .map(|(label, _)| label.as_str())
        .collect();
    if divergent.is_empty() {
        println!(
            "determinism: OK — all {} configurations (worker counts × cache on/off) \
             produced bit-identical trajectories",
            digests.len()
        );
    } else {
        eprintln!("determinism VIOLATED at {divergent:?}");
        finish_telemetry();
        std::process::exit(1);
    }

    // The server workload: greedy decode replay over a small request-seed
    // pool. This is where the cache structurally pays — after one pass over
    // the pool, every operation path replays out of the cache — whereas the
    // exploration sweep above draws fresh RNG filter terms per episode and
    // rarely repeats an exact path.
    let (plain_secs, plain_digest, steps, _) = decode_sweep(
        &frame,
        &atena_config.env,
        &plan_parts.policy,
        0,
        config.decode_episodes,
        config.decode_seeds,
    );
    let (cached_secs, cached_digest, _, stats) = decode_sweep(
        &frame,
        &atena_config.env,
        &plan_parts.policy,
        config.cache,
        config.decode_episodes,
        config.decode_seeds,
    );
    let plain_sps = steps as f64 / plain_secs.max(1e-9);
    let cached_sps = steps as f64 / cached_secs.max(1e-9);
    println!(
        "greedy decode replay ({} episodes × {} steps over {} request seeds, server workload):\n  \
         uncached {:.0} steps/sec, cached {:.0} steps/sec — cache speedup {:.2}×, hit rate {:.1}%",
        config.decode_episodes,
        atena_config.env.episode_len,
        config.decode_seeds,
        plain_sps,
        cached_sps,
        cached_sps / plain_sps,
        100.0 * stats.hit_rate(),
    );
    if plain_digest == cached_digest {
        println!("decode determinism: OK — cached replay bit-identical to uncached");
    } else {
        eprintln!(
            "decode determinism VIOLATED: uncached {plain_digest:016x} != cached {cached_digest:016x}"
        );
        finish_telemetry();
        std::process::exit(1);
    }
    let decode_record = DecodeRecord {
        episodes: config.decode_episodes,
        seed_pool: config.decode_seeds,
        steps_per_sec_uncached: plain_sps,
        steps_per_sec_cached: cached_sps,
        cache_speedup: cached_sps / plain_sps,
        cache_hit_rate: stats.hit_rate(),
        digest_match: plain_digest == cached_digest,
    };

    // Batched inference sweep: the same decode-replay workload stepped
    // through lane-batched policy forwards at each requested batch size.
    // The reference row is the pre-batching engine (graph-based act with
    // per-step weight snapshots); batch 1 is the serial schedule of the
    // new engine. On a single core batch N vs batch 1 is near-flat — the
    // kernels are compute-bound and batch 1 shares them — so the win the
    // subsystem bought shows in the vs-graph column (DESIGN.md §4l).
    let (graph_secs, graph_digest, graph_steps, graph_forward) = graph_reference_sweep(
        &frame,
        &atena_config.env,
        &plan_parts.policy,
        config.cache,
        config.decode_episodes,
        config.decode_seeds,
    );
    let graph_sps = graph_steps as f64 / graph_secs.max(1e-9);
    let graph_rows_ps = graph_steps as f64 / graph_forward.as_secs_f64().max(1e-9);
    println!(
        "pre-batching graph engine on the decode replay: {graph_sps:.0} steps/sec, \
         {graph_rows_ps:.0} forward rows/sec (episode digest {graph_digest:016x})"
    );
    let mut batch_rows = Vec::new();
    let mut batch_records = Vec::new();
    let mut batch_digests: Vec<(usize, u64)> = vec![(0, graph_digest)];
    let mut batch1_sps = None;
    for &batch in &config.batch_sizes {
        let (secs, digest, steps, mut forward_lat) = batched_decode_sweep(
            &frame,
            &atena_config.env,
            &plan_parts.policy,
            config.cache,
            config.decode_episodes,
            config.decode_seeds,
            batch,
        );
        let forward_secs: f64 = forward_lat.iter().map(Duration::as_secs_f64).sum();
        forward_lat.sort_unstable();
        let sps = steps as f64 / secs.max(1e-9);
        let rows_ps = steps as f64 / forward_secs.max(1e-9);
        let base_sps = *batch1_sps.get_or_insert(sps);
        let speedup = sps / base_sps.max(1e-9);
        batch_digests.push((batch, digest));
        let (p50, p95, p99) = (
            quantile_us(&forward_lat, 0.50),
            quantile_us(&forward_lat, 0.95),
            quantile_us(&forward_lat, 0.99),
        );
        batch_records.push(BatchSweepRecord {
            batch,
            steps_per_sec: sps,
            speedup_vs_batch1: speedup,
            speedup_vs_graph: sps / graph_sps.max(1e-9),
            forward_rows_per_sec: rows_ps,
            forward_speedup_vs_graph: rows_ps / graph_rows_ps.max(1e-9),
            forward_p50_us: p50,
            forward_p95_us: p95,
            forward_p99_us: p99,
            digest: format!("{digest:016x}"),
        });
        batch_rows.push(vec![
            batch.to_string(),
            f2(sps),
            f2(speedup),
            f2(sps / graph_sps.max(1e-9)),
            f2(rows_ps / graph_rows_ps.max(1e-9)),
            f2(p50),
            f2(p95),
            f2(p99),
            format!("{digest:016x}"),
        ]);
    }
    println!(
        "batched decode replay ({} episodes over {} request seeds, cache {}):",
        config.decode_episodes, config.decode_seeds, config.cache
    );
    println!(
        "{}",
        render_table(
            &[
                "batch",
                "steps/sec",
                "vs batch 1",
                "vs graph",
                "fwd vs graph",
                "fwd p50 µs",
                "fwd p95 µs",
                "fwd p99 µs",
                "episode digest"
            ],
            &batch_rows
        )
    );
    let batch_reference = graph_digest;
    let batch_divergent: Vec<String> = batch_digests
        .iter()
        .filter(|(_, d)| *d != batch_reference)
        .map(|(b, _)| {
            if *b == 0 {
                "graph".to_string()
            } else {
                format!("batch {b}")
            }
        })
        .collect();
    if batch_divergent.is_empty() {
        println!(
            "batch determinism: OK — the graph engine and every batch size produced \
             bit-identical episodes (batching is execution-only, DESIGN.md §4l)"
        );
    } else {
        eprintln!("batch determinism VIOLATED at {batch_divergent:?}");
        finish_telemetry();
        std::process::exit(1);
    }
    if let Some(path) = &config.batch_bench_out {
        let record = BatchBenchRecord {
            version: 1,
            bench: "batched_decode",
            dataset: config.dataset.clone(),
            episodes: config.decode_episodes,
            seed_pool: config.decode_seeds,
            episode_len: atena_config.env.episode_len,
            cache: config.cache,
            graph_steps_per_sec: graph_sps,
            graph_forward_rows_per_sec: graph_rows_ps,
            sweeps: batch_records,
            determinism_ok: true,
        };
        match atena_bench::dump_json_to(std::path::Path::new(path), &record) {
            Ok(()) => println!("batch bench record written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                finish_telemetry();
                std::process::exit(1);
            }
        }
    }

    // Span-tracing overhead: the same sweep at the highest worker count,
    // tracer off vs on. Tracing is execution-only, so the trajectories must
    // stay bit-identical; the steps/sec delta is the observability tax.
    let trace_workers = *config.workers.iter().max().expect("non-empty workers");
    let (off_secs, off_digest, _) = sweep(
        &frame,
        &atena_config.env,
        &plan_parts,
        &config,
        trace_workers,
        config.cache,
        false,
    );
    let tracer = atena_telemetry::tracer();
    let spans_before = tracer.counts().spans_recorded;
    tracer.set_enabled(true);
    let (on_secs, on_digest, _) = sweep(
        &frame,
        &atena_config.env,
        &plan_parts,
        &config,
        trace_workers,
        config.cache,
        true,
    );
    tracer.set_enabled(false);
    let spans_recorded = tracer.counts().spans_recorded - spans_before;
    let off_sps = total_steps as f64 / off_secs.max(1e-9);
    let on_sps = total_steps as f64 / on_secs.max(1e-9);
    let overhead_pct = 100.0 * (off_sps - on_sps) / off_sps.max(1e-9);
    println!(
        "tracing overhead (workers={trace_workers}): off {off_sps:.0} steps/sec, \
         on {on_sps:.0} steps/sec — {overhead_pct:+.2}% ({} budget {TRACING_BUDGET_PCT}%, \
         {spans_recorded} spans recorded)",
        if overhead_pct <= TRACING_BUDGET_PCT {
            "within"
        } else {
            "OVER"
        },
    );
    if off_digest != on_digest {
        eprintln!("tracing determinism VIOLATED: off {off_digest:016x} != on {on_digest:016x}");
        finish_telemetry();
        std::process::exit(1);
    }
    println!("tracing determinism: OK — traced sweep bit-identical to untraced");
    let tracing_record = TracingRecord {
        workers: trace_workers,
        steps_per_sec_off: off_sps,
        steps_per_sec_on: on_sps,
        overhead_pct,
        budget_pct: TRACING_BUDGET_PCT,
        within_budget: overhead_pct <= TRACING_BUDGET_PCT,
        spans_recorded,
        digest_match: off_digest == on_digest,
    };

    if let Some(path) = &config.bench_out {
        let record = BenchRecord {
            version: 1,
            bench: "rollout_throughput",
            dataset: config.dataset.clone(),
            lanes: config.lanes,
            rollout_len: config.rollout_len,
            iters: config.iters,
            total_steps,
            sweeps: sweep_records,
            decode: decode_record,
            tracing: tracing_record,
            determinism_ok: true,
        };
        match atena_bench::dump_json_to(std::path::Path::new(path), &record) {
            Ok(()) => println!("bench record written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                finish_telemetry();
                std::process::exit(1);
            }
        }
    }
    finish_telemetry();
}
