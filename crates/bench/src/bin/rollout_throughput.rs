//! Rollout-throughput driver for the `atena-runtime` scatter engine:
//! collects identical rollout iterations at several worker counts and
//! reports steps/sec plus the speedup over one worker — while asserting
//! the determinism contract (every worker count must produce bit-identical
//! trajectories).
//!
//! ```text
//! rollout_throughput [--dataset flights1] [--lanes 8] [--rollout-len 96]
//!                    [--iters 5] [--workers 1,2,4,8] [--seed 0]
//! ```
//!
//! Note: the speedup column only shows >1 on multi-core machines; the
//! determinism check is meaningful everywhere.

use atena_bench::{f2, render_table};
use atena_core::{Atena, AtenaConfig, Strategy};
use atena_env::EdaEnv;
use atena_rl::{
    ActionMapper, ParallelRollouts, RolloutPlan, RolloutSource, TwofoldConfig, TwofoldPolicy,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    dataset: String,
    lanes: usize,
    rollout_len: usize,
    iters: u64,
    workers: Vec<usize>,
    seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            dataset: "flights1".into(),
            lanes: 8,
            rollout_len: 96,
            iters: 5,
            workers: vec![1, 2, 4, 8],
            seed: 0,
        }
    }
}

const USAGE: &str = "\
rollout_throughput — steps/sec of the deterministic rollout engine

USAGE:
  rollout_throughput [--dataset ID] [--lanes N] [--rollout-len N]
                     [--iters N] [--workers 1,2,4,8] [--seed N]
";

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut config = Config::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value\n\n{USAGE}"))?;
        match flag {
            "--dataset" => config.dataset = value.clone(),
            "--lanes" => config.lanes = value.parse().map_err(|_| "--lanes: integer expected")?,
            "--rollout-len" => {
                config.rollout_len = value
                    .parse()
                    .map_err(|_| "--rollout-len: integer expected")?
            }
            "--iters" => config.iters = value.parse().map_err(|_| "--iters: integer expected")?,
            "--seed" => config.seed = value.parse().map_err(|_| "--seed: integer expected")?,
            "--workers" => {
                config.workers = value
                    .split(',')
                    .map(|w| w.trim().parse().map_err(|_| "--workers: integers expected"))
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
        i += 2;
    }
    if config.workers.is_empty() {
        return Err("--workers needs at least one count".into());
    }
    Ok(config)
}

/// One timed sweep at a worker count; returns (secs, trajectory digest).
/// The digest folds every step reward in buffer order, so two sweeps with
/// equal digests collected the same trajectories in the same order.
fn sweep(
    frame: &atena_dataframe::DataFrame,
    env_config: &atena_env::EnvConfig,
    plan_parts: &PlanParts,
    config: &Config,
    workers: usize,
) -> (f64, u64) {
    let mut source = ParallelRollouts::new(frame, env_config, config.lanes, config.seed, workers);
    let start = Instant::now();
    let mut digest = 0u64;
    let mut steps = 0usize;
    for iteration in 0..config.iters {
        let plan = RolloutPlan {
            policy: plan_parts.policy.as_ref(),
            mapper: &plan_parts.mapper,
            reward: plan_parts.reward.as_ref(),
            rollout_len: config.rollout_len,
            temperature: 1.0,
            base_seed: config.seed,
            iteration,
        };
        let (buffer, _episodes) = source.collect(&plan);
        steps += buffer.len();
        for step in buffer.steps() {
            digest = digest
                .rotate_left(7)
                .wrapping_add(u64::from(step.reward.to_bits()));
        }
    }
    let secs = start.elapsed().as_secs_f64();
    let _ = steps;
    (secs, digest)
}

struct PlanParts {
    policy: Arc<TwofoldPolicy>,
    mapper: ActionMapper,
    reward: Arc<dyn atena_env::RewardModel>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let Some(dataset) = atena_data::dataset_by_id(&config.dataset) else {
        eprintln!("unknown dataset {:?}", config.dataset);
        std::process::exit(2);
    };
    let focal = dataset.focal_attrs();
    let frame = dataset.frame;

    let mut atena_config = AtenaConfig::quick();
    atena_config.env.seed = config.seed;
    atena_config.probe_steps = 120;
    let reward: Arc<dyn atena_env::RewardModel> = Arc::new(
        Atena::new(&config.dataset, frame.clone())
            .with_focal_attrs(focal)
            .with_config(atena_config.clone())
            .with_strategy(Strategy::Atena)
            .build_reward(),
    );
    let probe = EdaEnv::new(frame.clone(), atena_config.env.clone());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let policy = Arc::new(TwofoldPolicy::new(
        probe.observation_dim(),
        probe.action_space().head_sizes(),
        TwofoldConfig { hidden: [64, 64] },
        &mut rng,
    ));
    let plan_parts = PlanParts {
        policy,
        mapper: ActionMapper::Twofold,
        reward,
    };

    let total_steps = config.lanes * config.rollout_len * config.iters as usize;
    println!(
        "rollout throughput on {:?}: {} lanes × {} steps × {} iters = {} env steps per sweep",
        config.dataset, config.lanes, config.rollout_len, config.iters, total_steps
    );

    let mut rows = Vec::new();
    let mut baseline = None;
    let mut digests: Vec<(usize, u64)> = Vec::new();
    for &workers in &config.workers {
        let (secs, digest) = sweep(&frame, &atena_config.env, &plan_parts, &config, workers);
        digests.push((workers, digest));
        let steps_per_sec = total_steps as f64 / secs.max(1e-9);
        let baseline_sps = *baseline.get_or_insert(steps_per_sec);
        rows.push(vec![
            workers.to_string(),
            f2(steps_per_sec),
            f2(steps_per_sec / baseline_sps),
            format!("{digest:016x}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["workers", "steps/sec", "speedup", "trajectory digest"],
            &rows
        )
    );

    let reference = digests[0].1;
    let divergent: Vec<usize> = digests
        .iter()
        .filter(|(_, d)| *d != reference)
        .map(|(w, _)| *w)
        .collect();
    if divergent.is_empty() {
        println!(
            "determinism: OK — all {} worker counts produced bit-identical trajectories",
            digests.len()
        );
    } else {
        eprintln!("determinism VIOLATED at worker counts {divergent:?}");
        std::process::exit(1);
    }
}
