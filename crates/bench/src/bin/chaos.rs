//! Chaos harness driver: self-hosts an `atena-server` from a checkpoint
//! and runs the byzantine scenario matrix (and optionally a soak) from
//! `atena_bench::chaos` against it.
//!
//! ```text
//! chaos --checkpoint BUNDLE.json [--timeout-ms 2000] [--requests 40]
//!       [--soak-secs 0] [--rss-budget-mb 48] [--bench-out BENCH_chaos.json]
//! ```
//!
//! Every scenario carries a typed expected outcome (exact status,
//! bounded 408/close, tolerated abort); after each one the harness
//! probes `/v1/healthz` and replays a known-good request that must stay
//! byte-identical to the offline decode of the same request. Throughout
//! the attack phase a background good client keeps hammering the server;
//! its p99 under attack is persisted next to the uncontested baseline.
//! The process exits nonzero on any unexpected outcome, divergence, or
//! soak failure.

use atena_bench::chaos::{
    latency_summary, run_scenario, run_soak, scenario_matrix, ChaosTarget, GoodTraffic,
    LatencySummary, ScenarioReport, SoakOptions, SoakReport,
};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Clone)]
struct Config {
    checkpoint: String,
    timeout_ms: u64,
    requests: usize,
    soak_secs: u64,
    rss_budget_mb: u64,
    bench_out: Option<String>,
}

const USAGE: &str = "\
chaos — byzantine-client scenario matrix and soak for `atena serve`

USAGE:
  chaos --checkpoint BUNDLE.json [--timeout-ms 2000] [--requests 40]
        [--soak-secs 0] [--rss-budget-mb 48]
        [--bench-out BENCH_chaos.json]

Self-hosts a server from the checkpoint on an ephemeral port with a
small registry budget and tight per-tenant admission, runs every
byzantine scenario (slow loris, disconnects, malformed/oversized frames,
header floods, pipelined garbage, request floods) against it, and checks
each scenario's typed expected outcome plus server health and good-client
byte-identity afterwards. --soak-secs > 0 adds a sustained mixed
good/byzantine workload with the registry churning at capacity,
asserting flat RSS, monotone counters, and advancing evictions.
";

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut checkpoint = None;
    let mut timeout_ms = 2000u64;
    let mut requests = 40usize;
    let mut soak_secs = 0u64;
    let mut rss_budget_mb = 48u64;
    let mut bench_out = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--checkpoint" => checkpoint = Some(value.clone()),
            "--timeout-ms" => {
                timeout_ms = value
                    .parse::<u64>()
                    .ok()
                    .filter(|v| *v > 0)
                    .ok_or_else(|| "--timeout-ms expects a positive integer".to_string())?
            }
            "--requests" => {
                requests = value
                    .parse::<usize>()
                    .ok()
                    .filter(|v| *v > 0)
                    .ok_or_else(|| "--requests expects a positive integer".to_string())?
            }
            "--soak-secs" => {
                soak_secs = value
                    .parse()
                    .map_err(|_| "--soak-secs expects an integer".to_string())?
            }
            "--rss-budget-mb" => {
                rss_budget_mb = value
                    .parse::<u64>()
                    .ok()
                    .filter(|v| *v > 0)
                    .ok_or_else(|| "--rss-budget-mb expects a positive integer".to_string())?
            }
            "--bench-out" => bench_out = Some(value.clone()),
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
        i += 2;
    }
    Ok(Config {
        checkpoint: checkpoint.ok_or_else(|| format!("--checkpoint is required\n\n{USAGE}"))?,
        timeout_ms,
        requests,
        soak_secs,
        rss_budget_mb,
        bench_out,
    })
}

/// The persisted `BENCH_chaos.json` schema (`version` guards consumers
/// against silent shape drift).
#[derive(serde::Serialize)]
struct ChaosBenchRecord {
    version: u32,
    bench: &'static str,
    dataset: String,
    timeout_ms: u64,
    scenarios: Vec<ScenarioReport>,
    unexpected: usize,
    good_client: GoodClientRecord,
    soak: Option<SoakReport>,
    server_counters: std::collections::BTreeMap<String, u64>,
}

/// Good-client latency with no attack running vs. during the scenario
/// matrix, plus the byte-identity verdict.
#[derive(serde::Serialize)]
struct GoodClientRecord {
    baseline: LatencySummary,
    under_attack: LatencySummary,
    divergences: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    std::process::exit(run(&config));
}

fn run(config: &Config) -> i32 {
    // 1. Load the checkpoint twice: one engine serves, a sibling decodes
    //    offline to anchor the byte-identity checks.
    let bundle = match atena_core::PolicyBundle::load(std::path::Path::new(&config.checkpoint)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot load checkpoint {}: {e}", config.checkpoint);
            return 2;
        }
    };
    let Some(dataset) = atena_data::dataset_by_id(&bundle.dataset) else {
        eprintln!(
            "checkpoint was trained on dataset {:?}, which is not built in",
            bundle.dataset
        );
        return 2;
    };
    let offline = match atena_server::Engine::new(bundle.clone(), dataset.frame.clone()) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot build offline engine: {e}");
            return 2;
        }
    };
    let engine = match atena_server::Engine::new(bundle.clone(), dataset.frame.clone()) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot build serving engine: {e}");
            return 2;
        }
    };

    // Offline references: the exact bytes the server must return. The
    // offline engine decodes serially; the server microbatches — the
    // determinism contract says the bytes cannot differ.
    let episode_len = 4usize.min(atena_server::MAX_EPISODE_LEN);
    let reference = |seed: u64| -> Result<(String, String), String> {
        let request = offline
            .validate(&bundle.dataset, Some(episode_len), Some(seed))
            .map_err(|e| e.to_string())?;
        let response = offline.decode(&request).map_err(|e| e.to_string())?;
        let expected = serde_json::to_string(&response).map_err(|e| e.to_string())?;
        let body = format!(
            "{{\"dataset\":{:?},\"episode_len\":{episode_len},\"seed\":{seed}}}",
            bundle.dataset
        );
        Ok((body, expected))
    };
    let mut good_requests = Vec::new();
    for seed in 0..6u64 {
        match reference(seed) {
            Ok(pair) => good_requests.push(pair),
            Err(e) => {
                eprintln!("offline reference decode failed (seed {seed}): {e}");
                return 2;
            }
        }
    }

    // 2. Self-host: small registry budget (so the soak's upload churn
    //    evicts), tight per-tenant admission (so the flood sheds), and
    //    the per-request deadline under test.
    let request_timeout = Duration::from_millis(config.timeout_ms);
    let server_config = atena_server::ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        cache_size: 8,
        request_timeout,
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        registry: atena_registry::RegistryConfig {
            budget_bytes: 16 * 1024,
            max_datasets: 8,
            tenant_quota_bytes: 8 * 1024,
            limits: atena_dataframe::CsvLimits {
                max_bytes: 4096,
                max_rows: 10_000,
                max_cols: 16,
            },
        },
        tenant_limits: atena_registry::TenantLimits {
            max_inflight: 2,
            retry_after_secs: 1,
        },
        ..Default::default()
    };
    let max_body_bytes = server_config.max_body_bytes;
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let server = match atena_server::Server::bind_with_telemetry(
        server_config,
        engine,
        Arc::clone(&telemetry),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind server: {e}");
            return 1;
        }
    };
    let addr = server.local_addr().expect("bound server has an address");
    let handle = server.spawn().expect("server thread spawns");
    println!(
        "chaos: server on {addr} (timeout {} ms, registry budget 16 KiB, admission cap 2)",
        config.timeout_ms
    );

    let target = ChaosTarget {
        addr: addr.to_string(),
        good_body: good_requests[0].0.clone(),
        expected_body: good_requests[0].1.clone(),
        request_timeout,
        max_body_bytes,
    };

    // 3. Uncontested baseline: good-client latency with nothing hostile
    //    in flight.
    let mut baseline_latencies = Vec::with_capacity(config.requests);
    for _ in 0..config.requests {
        match target.good_shot() {
            Ok(latency) => baseline_latencies.push(latency),
            Err(e) => {
                eprintln!("baseline good shot failed: {e}");
                handle.shutdown();
                return 1;
            }
        }
    }
    let baseline = latency_summary(&mut baseline_latencies);
    println!(
        "baseline: {} good requests, p50 {:.3} ms, p99 {:.3} ms",
        baseline.requests, baseline.p50_ms, baseline.p99_ms
    );

    // 4. The scenario matrix, with a concurrent good client throughout:
    //    correctness under attack is the point, not an afterthought.
    let good = GoodTraffic::start(target.clone(), Duration::from_millis(10));
    let mut scenarios = Vec::new();
    for scenario in scenario_matrix(&target) {
        let report = run_scenario(&target, &scenario);
        println!(
            "{:<26} expected [{}]  observed [{}]  {}  ({:.0} ms)",
            report.scenario,
            report.expected,
            report.observed,
            if report.pass { "PASS" } else { "FAIL" },
            report.duration_ms
        );
        scenarios.push(report);
    }
    let (mut attack_latencies, divergences) = good.stop();
    let under_attack = latency_summary(&mut attack_latencies);
    let unexpected = scenarios.iter().filter(|s| !s.pass).count();
    println!(
        "under attack: {} good requests, p50 {:.3} ms, p99 {:.3} ms, {} divergences",
        under_attack.requests, under_attack.p50_ms, under_attack.p99_ms, divergences
    );

    // 5. Optional soak: sustained mixed traffic with the registry and
    //    display cache churning at capacity.
    let soak = if config.soak_secs > 0 {
        let mut base_csv = String::from("k,v\n");
        for r in 0..30 {
            base_csv.push_str(&format!("row{r},{r}\n"));
        }
        println!(
            "soak: {} s of mixed good/byzantine traffic...",
            config.soak_secs
        );
        let report = run_soak(
            &target,
            &SoakOptions {
                duration: Duration::from_secs(config.soak_secs),
                rss_budget_bytes: config.rss_budget_mb * (1 << 20),
                good_requests: good_requests.clone(),
                upload_csv: Some(base_csv),
                sample_every: Duration::from_millis(500),
            },
        );
        println!(
            "soak: {} good, {} byzantine, {} uploads, RSS growth {} KiB (budget {} KiB), \
             evictions +{}, monotone {}, {}",
            report.good_requests,
            report.byzantine_shots,
            report.uploads_attempted,
            report.rss_growth_bytes / 1024,
            report.rss_budget_bytes / 1024,
            report.evictions_delta,
            report.counters_monotone,
            if report.pass { "PASS" } else { "FAIL" }
        );
        for failure in &report.failures {
            eprintln!("soak failure: {failure}");
        }
        Some(report)
    } else {
        None
    };

    // 6. Snapshot the interesting server counters, then drain.
    let snap = telemetry.snapshot();
    let server_counters: std::collections::BTreeMap<String, u64> = [
        "server.http.requests",
        "server.http.parse_errors",
        "server.http.errors",
        "server.http.throttled",
        "server.http.write_errors",
        "server.pool.panics",
        "server.connections",
        "batch.flush.aborted",
        "admission.rejected",
        "registry.uploads",
        "registry.evictions",
    ]
    .iter()
    .map(|name| ((*name).to_string(), snap.counter(name).unwrap_or(0)))
    .collect();
    handle.shutdown();

    let soak_failed = soak.as_ref().is_some_and(|s| !s.pass);
    if let Some(path) = &config.bench_out {
        let record = ChaosBenchRecord {
            version: 1,
            bench: "chaos",
            dataset: bundle.dataset.clone(),
            timeout_ms: config.timeout_ms,
            scenarios,
            unexpected,
            good_client: GoodClientRecord {
                baseline,
                under_attack,
                divergences,
            },
            soak,
            server_counters,
        };
        match atena_bench::dump_json_to(std::path::Path::new(path), &record) {
            Ok(()) => println!("chaos bench record written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }

    if unexpected > 0 || divergences > 0 || soak_failed {
        eprintln!(
            "FAIL: {unexpected} unexpected scenario outcomes, {divergences} divergences, \
             soak {}",
            if soak_failed { "failed" } else { "ok" }
        );
        return 1;
    }
    let panics = snap.counter("server.pool.panics").unwrap_or(0);
    if panics > 0 {
        eprintln!("FAIL: {panics} worker panics under chaos");
        return 1;
    }
    println!("chaos: all scenarios produced their expected outcomes");
    0
}
