//! HTTP load generator for `atena serve`: a std-only client that drives
//! `POST /v1/notebook` from N concurrent keep-alive connections and reports
//! p50/p95/p99 latency and sustained QPS.
//!
//! ```text
//! loadgen --addr 127.0.0.1:8080 --requests 200 --concurrency 8 \
//!         --dataset cyber1 [--episode-len N] [--seed N] \
//!         [--bench-out BENCH_serving.json]
//! ```
//!
//! With `--bench-out`, the run's QPS, latency quantiles, and cache-hit
//! counts persist as a versioned JSON record (the CI serving-perf
//! artifact).
//!
//! Identical requests must produce identical responses (the server decodes
//! greedily from a fixed seed and caches); any divergence is reported and
//! fails the run.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Config {
    addr: String,
    requests: usize,
    concurrency: usize,
    dataset: String,
    episode_len: Option<usize>,
    seed: Option<u64>,
    bench_out: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".into(),
            requests: 100,
            concurrency: 4,
            dataset: "cyber1".into(),
            episode_len: None,
            seed: None,
            bench_out: None,
        }
    }
}

#[derive(serde::Serialize)]
struct LatencyRecord {
    mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// The persisted `BENCH_serving.json` schema (`version` guards consumers
/// against silent shape drift).
#[derive(serde::Serialize)]
struct BenchRecord {
    version: u32,
    bench: &'static str,
    dataset: String,
    requests: usize,
    concurrency: usize,
    wall_secs: f64,
    qps: f64,
    latency: LatencyRecord,
    cache_hits: usize,
    identical_responses: bool,
}

const USAGE: &str = "\
loadgen — concurrency driver for `atena serve`

USAGE:
  loadgen [--addr A] [--requests N] [--concurrency N]
          [--dataset ID] [--episode-len N] [--seed N]
          [--bench-out BENCH_serving.json]
";

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut config = Config::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--addr" => config.addr = value.clone(),
            "--requests" => {
                config.requests = value
                    .parse()
                    .map_err(|_| "--requests expects an integer".to_string())?
            }
            "--concurrency" => {
                config.concurrency = value
                    .parse::<usize>()
                    .map_err(|_| "--concurrency expects an integer".to_string())?
                    .max(1)
            }
            "--dataset" => config.dataset = value.clone(),
            "--episode-len" => {
                config.episode_len = Some(
                    value
                        .parse()
                        .map_err(|_| "--episode-len expects an integer".to_string())?,
                )
            }
            "--seed" => {
                config.seed = Some(
                    value
                        .parse()
                        .map_err(|_| "--seed expects an integer".to_string())?,
                )
            }
            "--bench-out" => config.bench_out = Some(value.clone()),
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
        i += 2;
    }
    Ok(config)
}

fn request_body(config: &Config) -> String {
    let mut body = format!("{{\"dataset\":{:?}", config.dataset);
    if let Some(n) = config.episode_len {
        body.push_str(&format!(",\"episode_len\":{n}"));
    }
    if let Some(s) = config.seed {
        body.push_str(&format!(",\"seed\":{s}"));
    }
    body.push('}');
    body
}

/// One keep-alive worker: reconnects on connection loss, issues requests
/// until the shared budget is exhausted.
fn worker(
    config: &Config,
    raw_request: &[u8],
    remaining: &AtomicUsize,
) -> Result<(Vec<Duration>, Vec<String>, usize), String> {
    let mut latencies = Vec::new();
    let mut bodies = Vec::new();
    let mut cache_hits = 0usize;
    let mut stream: Option<TcpStream> = None;
    loop {
        // Claim one request from the shared budget.
        if remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_err()
        {
            return Ok((latencies, bodies, cache_hits));
        }
        let conn = match stream.take() {
            Some(s) => s,
            None => {
                let s = TcpStream::connect(&config.addr)
                    .map_err(|e| format!("connect {}: {e}", config.addr))?;
                s.set_read_timeout(Some(Duration::from_secs(30)))
                    .map_err(|e| e.to_string())?;
                s.set_nodelay(true).ok();
                s
            }
        };
        let mut conn = conn;
        let start = Instant::now();
        conn.write_all(raw_request).map_err(|e| e.to_string())?;
        let (status, headers, body) = read_response(&mut conn)?;
        latencies.push(start.elapsed());
        if status != 200 {
            return Err(format!("HTTP {status}: {body}"));
        }
        if headers
            .iter()
            .any(|(n, v)| n == "x-atena-cache" && v == "hit")
        {
            cache_hits += 1;
        }
        bodies.push(body);
        stream = Some(conn); // reuse the connection
    }
}

/// Read one HTTP response (head + Content-Length body) from the stream.
fn read_response(stream: &mut TcpStream) -> Result<(u16, Vec<(String, String)>, String), String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        if let Some(parsed) = try_parse(&buf)? {
            return Ok(parsed);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err("server closed mid-response".into()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read: {e}")),
        }
    }
}

#[allow(clippy::type_complexity)]
fn try_parse(buf: &[u8]) -> Result<Option<(u16, Vec<(String, String)>, String)>, String> {
    let text = String::from_utf8_lossy(buf);
    let Some((head, rest)) = text.split_once("\r\n\r\n") else {
        return Ok(None);
    };
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    if rest.len() < len {
        return Ok(None);
    }
    Ok(Some((status, headers, rest[..len].to_string())))
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let body = request_body(&config);
    let raw_request = format!(
        "POST /v1/notebook HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        config.addr,
        body.len()
    )
    .into_bytes();

    println!(
        "loadgen: {} requests, {} connections -> http://{}/v1/notebook {body}",
        config.requests, config.concurrency, config.addr
    );
    let remaining = Arc::new(AtomicUsize::new(config.requests));
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let workers: Vec<_> = (0..config.concurrency)
        .map(|_| {
            let config = config.clone();
            let raw_request = raw_request.clone();
            let remaining = Arc::clone(&remaining);
            let failures = Arc::clone(&failures);
            std::thread::spawn(move || match worker(&config, &raw_request, &remaining) {
                Ok(result) => result,
                Err(e) => {
                    failures.lock().unwrap().push(e);
                    (Vec::new(), Vec::new(), 0)
                }
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut bodies: Vec<String> = Vec::new();
    let mut cache_hits = 0usize;
    for w in workers {
        let (lat, bod, hits) = w.join().expect("worker panicked");
        latencies.extend(lat);
        bodies.extend(bod);
        cache_hits += hits;
    }
    let elapsed = started.elapsed();

    for failure in failures.lock().unwrap().iter() {
        eprintln!("worker error: {failure}");
    }
    if latencies.is_empty() {
        eprintln!("no successful requests");
        std::process::exit(1);
    }

    // Identical requests must yield identical notebooks.
    let reference = &bodies[0];
    let divergent = bodies.iter().filter(|b| *b != reference).count();

    latencies.sort();
    let total: Duration = latencies.iter().sum();
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!("requests     {:>10}", latencies.len());
    println!("cache hits   {:>10}", cache_hits);
    println!("wall time    {:>10.3} s", elapsed.as_secs_f64());
    println!("QPS          {:>10.1}", latencies.len() as f64 / secs);
    println!(
        "latency mean {:>10.3} ms",
        total.as_secs_f64() * 1e3 / latencies.len() as f64
    );
    for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        println!(
            "latency {label}  {:>10.3} ms",
            quantile(&latencies, q).as_secs_f64() * 1e3
        );
    }
    if let Some(path) = &config.bench_out {
        let record = BenchRecord {
            version: 1,
            bench: "loadgen",
            dataset: config.dataset.clone(),
            requests: latencies.len(),
            concurrency: config.concurrency,
            wall_secs: elapsed.as_secs_f64(),
            qps: latencies.len() as f64 / secs,
            latency: LatencyRecord {
                mean_ms: total.as_secs_f64() * 1e3 / latencies.len() as f64,
                p50_ms: quantile(&latencies, 0.50).as_secs_f64() * 1e3,
                p95_ms: quantile(&latencies, 0.95).as_secs_f64() * 1e3,
                p99_ms: quantile(&latencies, 0.99).as_secs_f64() * 1e3,
            },
            cache_hits,
            identical_responses: divergent == 0,
        };
        match atena_bench::dump_json_to(std::path::Path::new(path), &record) {
            Ok(()) => println!("bench record written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if divergent > 0 {
        eprintln!("FAIL: {divergent} responses diverged from the first");
        std::process::exit(1);
    }
    println!("all responses identical");
    if !failures.lock().unwrap().is_empty() {
        std::process::exit(1);
    }
}
