//! HTTP load generator for `atena serve`: a std-only client that drives
//! `POST /v1/notebook` from N concurrent keep-alive connections and reports
//! p50/p95/p99 latency and sustained QPS.
//!
//! ```text
//! loadgen --addr 127.0.0.1:8080 --requests 200 --concurrency 8 \
//!         --dataset cyber1 [--episode-len N] [--seed N] \
//!         [--bench-out BENCH_serving.json]
//! ```
//!
//! With `--bench-out`, the run's QPS, latency quantiles, and cache-hit
//! counts persist as a versioned JSON record (the CI serving-perf
//! artifact).
//!
//! Identical requests must produce identical responses (the server decodes
//! greedily from a fixed seed and caches); any divergence is reported and
//! fails the run.
//!
//! ## Mixed-tenant mode (`--mode mixed`)
//!
//! An **open-loop** driver for the multi-tenant surface: N tenants each
//! send at a fixed rate on their own schedule (latency is measured from
//! the *scheduled* send time, so server-side queueing is not hidden by
//! client back-pressure — no coordinated omission). With `--upload-csv`
//! each tenant first uploads its own variant of the CSV (truncated by one
//! row per tenant index, so fingerprints differ) and decodes against its
//! `dataset_id`. `--hog-factor F` multiplies tenant 0's rate, turning it
//! into a noisy neighbour; its 429s are counted, never fatal, and the
//! per-tenant quantiles show whether the quiet tenants kept their latency.
//! `--bench-out` persists `BENCH_multitenant.json` (`bench:
//! "loadgen-mixed"`).
//!
//! ## Batch-sweep mode (`--checkpoint B.json --batch-sizes 1,4,8`)
//!
//! Self-hosting sweep over the server's `--max-batch` knob: for each batch
//! size, an in-process server is spawned from the checkpoint on an
//! ephemeral port (response cache off, so every request decodes and the
//! microbatch queue actually coalesces), hammered with the closed-loop
//! driver, and shut down. Responses must be identical within a run *and*
//! across batch sizes — batching is execution-only (DESIGN.md §4l).
//! `--batch-bench-out` persists `BENCH_batch_serving.json` (`bench:
//! "loadgen-batch"`) with per-batch QPS and latency quantiles.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Config {
    addr: String,
    requests: usize,
    concurrency: usize,
    dataset: String,
    episode_len: Option<usize>,
    seed: Option<u64>,
    bench_out: Option<String>,
    mode: Mode,
    tenants: usize,
    rate: f64,
    hog_factor: f64,
    upload_csv: Option<String>,
    checkpoint: Option<String>,
    batch_sizes: Vec<usize>,
    batch_bench_out: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Closed,
    Mixed,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".into(),
            requests: 100,
            concurrency: 4,
            dataset: "cyber1".into(),
            episode_len: None,
            seed: None,
            bench_out: None,
            mode: Mode::Closed,
            tenants: 3,
            rate: 20.0,
            hog_factor: 1.0,
            upload_csv: None,
            checkpoint: None,
            batch_sizes: vec![1, 4, 8],
            batch_bench_out: None,
        }
    }
}

#[derive(serde::Serialize)]
struct LatencyRecord {
    mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// The persisted `BENCH_serving.json` schema (`version` guards consumers
/// against silent shape drift).
#[derive(serde::Serialize)]
struct BenchRecord {
    version: u32,
    bench: &'static str,
    dataset: String,
    requests: usize,
    concurrency: usize,
    wall_secs: f64,
    qps: f64,
    latency: LatencyRecord,
    cache_hits: usize,
    identical_responses: bool,
}

const USAGE: &str = "\
loadgen — concurrency driver for `atena serve`

USAGE:
  loadgen [--addr A] [--requests N] [--concurrency N]
          [--dataset ID] [--episode-len N] [--seed N]
          [--bench-out BENCH_serving.json]
  loadgen --mode mixed [--tenants N] [--rate R] [--hog-factor F]
          [--upload-csv data.csv] [--requests N] [--addr A]
          [--episode-len N] [--bench-out BENCH_multitenant.json]
  loadgen --checkpoint BUNDLE.json [--batch-sizes 1,4,8]
          [--requests N] [--concurrency N] [--episode-len N] [--seed N]
          [--batch-bench-out BENCH_batch_serving.json]

Mixed mode is open-loop: each tenant sends at R req/s on its own
schedule; latency is measured from the scheduled send time. Tenant 0's
rate is multiplied by --hog-factor; 429 responses are counted, not
fatal.

With --checkpoint, loadgen self-hosts: for each --batch-sizes entry it
spawns an in-process server (response cache off) with that --max-batch,
runs the closed-loop sweep, and requires identical responses across all
batch sizes (batching is execution-only, DESIGN.md §4l).
";

fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut config = Config::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(USAGE.to_string());
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} requires a value"))?;
        match flag {
            "--addr" => config.addr = value.clone(),
            "--requests" => {
                config.requests = value
                    .parse()
                    .map_err(|_| "--requests expects an integer".to_string())?
            }
            "--concurrency" => {
                config.concurrency = value
                    .parse::<usize>()
                    .map_err(|_| "--concurrency expects an integer".to_string())?
                    .max(1)
            }
            "--dataset" => config.dataset = value.clone(),
            "--episode-len" => {
                config.episode_len = Some(
                    value
                        .parse()
                        .map_err(|_| "--episode-len expects an integer".to_string())?,
                )
            }
            "--seed" => {
                config.seed = Some(
                    value
                        .parse()
                        .map_err(|_| "--seed expects an integer".to_string())?,
                )
            }
            "--bench-out" => config.bench_out = Some(value.clone()),
            "--mode" => {
                config.mode = match value.as_str() {
                    "closed" => Mode::Closed,
                    "mixed" => Mode::Mixed,
                    other => return Err(format!("--mode expects closed|mixed, got {other:?}")),
                }
            }
            "--tenants" => {
                config.tenants = value
                    .parse::<usize>()
                    .map_err(|_| "--tenants expects an integer".to_string())?
                    .max(1)
            }
            "--rate" => {
                config.rate = value
                    .parse::<f64>()
                    .ok()
                    .filter(|r| *r > 0.0)
                    .ok_or_else(|| "--rate expects a positive number".to_string())?
            }
            "--hog-factor" => {
                config.hog_factor = value
                    .parse::<f64>()
                    .ok()
                    .filter(|f| *f >= 1.0)
                    .ok_or_else(|| "--hog-factor expects a number >= 1".to_string())?
            }
            "--upload-csv" => config.upload_csv = Some(value.clone()),
            "--checkpoint" => config.checkpoint = Some(value.clone()),
            "--batch-sizes" => {
                config.batch_sizes = value
                    .split(',')
                    .map(|b| {
                        b.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|b| *b > 0)
                            .ok_or_else(|| "--batch-sizes expects positive integers".to_string())
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--batch-bench-out" => config.batch_bench_out = Some(value.clone()),
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
        i += 2;
    }
    if config.batch_sizes.is_empty() {
        return Err("--batch-sizes needs at least one batch size".into());
    }
    Ok(config)
}

fn request_body(config: &Config) -> String {
    let mut body = format!("{{\"dataset\":{:?}", config.dataset);
    if let Some(n) = config.episode_len {
        body.push_str(&format!(",\"episode_len\":{n}"));
    }
    if let Some(s) = config.seed {
        body.push_str(&format!(",\"seed\":{s}"));
    }
    body.push('}');
    body
}

/// One keep-alive worker: reconnects on connection loss, issues requests
/// until the shared budget is exhausted.
fn worker(
    config: &Config,
    raw_request: &[u8],
    remaining: &AtomicUsize,
) -> Result<(Vec<Duration>, Vec<String>, usize), String> {
    let mut latencies = Vec::new();
    let mut bodies = Vec::new();
    let mut cache_hits = 0usize;
    let mut stream: Option<TcpStream> = None;
    loop {
        // Claim one request from the shared budget.
        if remaining
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_err()
        {
            return Ok((latencies, bodies, cache_hits));
        }
        let conn = match stream.take() {
            Some(s) => s,
            None => {
                let s = TcpStream::connect(&config.addr)
                    .map_err(|e| format!("connect {}: {e}", config.addr))?;
                s.set_read_timeout(Some(Duration::from_secs(30)))
                    .map_err(|e| e.to_string())?;
                s.set_nodelay(true).ok();
                s
            }
        };
        let mut conn = conn;
        let start = Instant::now();
        conn.write_all(raw_request).map_err(|e| e.to_string())?;
        let (status, headers, body) = read_response(&mut conn)?;
        latencies.push(start.elapsed());
        if status != 200 {
            return Err(format!("HTTP {status}: {body}"));
        }
        if headers
            .iter()
            .any(|(n, v)| n == "x-atena-cache" && v == "hit")
        {
            cache_hits += 1;
        }
        bodies.push(body);
        stream = Some(conn); // reuse the connection
    }
}

/// Read one HTTP response (head + Content-Length body) from the stream.
fn read_response(stream: &mut TcpStream) -> Result<(u16, Vec<(String, String)>, String), String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 8192];
    loop {
        if let Some(parsed) = try_parse(&buf)? {
            return Ok(parsed);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err("server closed mid-response".into()),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(format!("read: {e}")),
        }
    }
}

#[allow(clippy::type_complexity)]
fn try_parse(buf: &[u8]) -> Result<Option<(u16, Vec<(String, String)>, String)>, String> {
    let text = String::from_utf8_lossy(buf);
    let Some((head, rest)) = text.split_once("\r\n\r\n") else {
        return Ok(None);
    };
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    if rest.len() < len {
        return Ok(None);
    }
    Ok(Some((status, headers, rest[..len].to_string())))
}

fn quantile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

// ---- mixed-tenant open-loop mode ---------------------------------------

/// Per-tenant (or overall) outcome counts and success-latency quantiles.
#[derive(serde::Serialize)]
struct TenantRecord {
    tenant: String,
    sent: usize,
    ok: usize,
    throttled: usize,
    errors: usize,
    cache_hits: usize,
    rate_rps: f64,
    latency: LatencyRecord,
}

/// The persisted `BENCH_multitenant.json` schema.
#[derive(serde::Serialize)]
struct MixedBenchRecord {
    version: u32,
    bench: &'static str,
    tenants: usize,
    rate_per_tenant: f64,
    hog_factor: f64,
    requests: usize,
    wall_secs: f64,
    per_tenant: Vec<TenantRecord>,
    overall: TenantRecord,
}

/// One fresh-connection HTTP exchange.
fn one_shot(addr: &str, raw: &[u8]) -> Result<(u16, Vec<(String, String)>, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    stream.set_nodelay(true).ok();
    stream.write_all(raw).map_err(|e| e.to_string())?;
    read_response(&mut stream)
}

/// Upload one tenant's CSV variant; returns the content-addressed
/// `dataset_id` the server assigned.
fn upload_variant(addr: &str, tenant: &str, csv: &str) -> Result<String, String> {
    let raw = format!(
        "POST /v1/datasets?name={tenant} HTTP/1.1\r\nHost: {addr}\r\n\
         X-Atena-Tenant: {tenant}\r\nContent-Type: text/csv\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{csv}",
        csv.len()
    );
    let (status, _, body) = one_shot(addr, raw.as_bytes())?;
    if status != 200 && status != 201 {
        return Err(format!("upload for {tenant}: HTTP {status}: {body}"));
    }
    let value: serde_json::Value =
        serde_json::from_str(&body).map_err(|e| format!("upload response: {e}"))?;
    value["dataset"]["dataset_id"]
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("upload response missing dataset_id: {body}"))
}

/// Tenant `i` keeps all but the last `i` data rows, so every tenant's
/// upload has distinct content (and a distinct fingerprint) while staying
/// schema-identical.
fn truncate_rows(csv: &str, drop_last: usize) -> String {
    let mut lines: Vec<&str> = csv.lines().collect();
    let keep = lines.len().saturating_sub(drop_last).max(2); // header + 1 row
    lines.truncate(keep);
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// What one scheduled request produced.
struct ShotOutcome {
    tenant: usize,
    status: u16,
    cache_hit: bool,
    /// Completion time minus the *scheduled* send time.
    latency: Duration,
}

fn tenant_record(name: String, rate: f64, outcomes: &[&ShotOutcome]) -> TenantRecord {
    let mut ok_lat: Vec<Duration> = outcomes
        .iter()
        .filter(|o| o.status == 200)
        .map(|o| o.latency)
        .collect();
    ok_lat.sort();
    let mean_ms = if ok_lat.is_empty() {
        0.0
    } else {
        ok_lat.iter().map(Duration::as_secs_f64).sum::<f64>() * 1e3 / ok_lat.len() as f64
    };
    TenantRecord {
        tenant: name,
        sent: outcomes.len(),
        ok: ok_lat.len(),
        throttled: outcomes.iter().filter(|o| o.status == 429).count(),
        errors: outcomes
            .iter()
            .filter(|o| o.status != 200 && o.status != 429)
            .count(),
        cache_hits: outcomes.iter().filter(|o| o.cache_hit).count(),
        rate_rps: rate,
        latency: LatencyRecord {
            mean_ms,
            p50_ms: quantile(&ok_lat, 0.50).as_secs_f64() * 1e3,
            p95_ms: quantile(&ok_lat, 0.95).as_secs_f64() * 1e3,
            p99_ms: quantile(&ok_lat, 0.99).as_secs_f64() * 1e3,
        },
    }
}

/// Open-loop mixed-tenant run. Returns the process exit code.
fn run_mixed(config: &Config) -> i32 {
    let per_tenant = (config.requests / config.tenants).max(1);
    // Resolve each tenant's decode target: a per-tenant uploaded dataset,
    // or the shared baked-in dataset by name.
    let mut targets: Vec<String> = Vec::new();
    for t in 0..config.tenants {
        let tenant = format!("tenant{t}");
        if let Some(path) = &config.upload_csv {
            let csv = match std::fs::read_to_string(path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return 2;
                }
            };
            match upload_variant(&config.addr, &tenant, &truncate_rows(&csv, t)) {
                Ok(id) => {
                    println!("{tenant}: uploaded variant as {id}");
                    targets.push(format!("\"dataset_id\":{id:?}"));
                }
                Err(e) => {
                    eprintln!("{e}");
                    return 1;
                }
            }
        } else {
            targets.push(format!("\"dataset\":{:?}", config.dataset));
        }
    }

    let episode_len = config.episode_len.unwrap_or(6);
    let outcomes: Arc<Mutex<Vec<ShotOutcome>>> = Arc::new(Mutex::new(Vec::new()));
    let transport_errors = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    // One dispatcher thread per tenant: sleep until each scheduled send
    // time, then fire the request on a throwaway thread so a slow server
    // never delays the schedule (open loop).
    let dispatchers: Vec<_> = (0..config.tenants)
        .map(|t| {
            let addr = config.addr.clone();
            let target = targets[t].clone();
            let outcomes = Arc::clone(&outcomes);
            let transport_errors = Arc::clone(&transport_errors);
            let rate = if t == 0 {
                config.rate * config.hog_factor
            } else {
                config.rate
            };
            std::thread::spawn(move || {
                let mut shots = Vec::new();
                for k in 0..per_tenant {
                    let scheduled = started + Duration::from_secs_f64(k as f64 / rate);
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let body = format!(
                        "{{{target},\"episode_len\":{episode_len},\"seed\":{}}}",
                        k % 32
                    );
                    let raw = format!(
                        "POST /v1/notebook HTTP/1.1\r\nHost: {addr}\r\n\
                         X-Atena-Tenant: tenant{t}\r\nContent-Type: application/json\r\n\
                         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len()
                    );
                    let addr = addr.clone();
                    let outcomes = Arc::clone(&outcomes);
                    let transport_errors = Arc::clone(&transport_errors);
                    shots.push(std::thread::spawn(move || {
                        match one_shot(&addr, raw.as_bytes()) {
                            Ok((status, headers, _)) => {
                                let cache_hit = headers
                                    .iter()
                                    .any(|(n, v)| n == "x-atena-cache" && v == "hit");
                                outcomes.lock().unwrap().push(ShotOutcome {
                                    tenant: t,
                                    status,
                                    cache_hit,
                                    latency: scheduled.elapsed(),
                                });
                            }
                            Err(e) => {
                                eprintln!("tenant{t} request {k}: {e}");
                                transport_errors.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }));
                }
                for s in shots {
                    let _ = s.join();
                }
            })
        })
        .collect();
    for d in dispatchers {
        d.join().expect("dispatcher panicked");
    }
    let elapsed = started.elapsed();

    let outcomes = outcomes.lock().unwrap();
    let mut per_tenant_records = Vec::new();
    println!(
        "{:<10} {:>6} {:>6} {:>9} {:>7} {:>10} {:>10} {:>10}",
        "tenant", "sent", "ok", "throttled", "errors", "p50 ms", "p95 ms", "p99 ms"
    );
    for t in 0..config.tenants {
        let rate = if t == 0 {
            config.rate * config.hog_factor
        } else {
            config.rate
        };
        let mine: Vec<&ShotOutcome> = outcomes.iter().filter(|o| o.tenant == t).collect();
        let rec = tenant_record(format!("tenant{t}"), rate, &mine);
        println!(
            "{:<10} {:>6} {:>6} {:>9} {:>7} {:>10.3} {:>10.3} {:>10.3}",
            rec.tenant,
            rec.sent,
            rec.ok,
            rec.throttled,
            rec.errors,
            rec.latency.p50_ms,
            rec.latency.p95_ms,
            rec.latency.p99_ms
        );
        per_tenant_records.push(rec);
    }
    let all: Vec<&ShotOutcome> = outcomes.iter().collect();
    let overall = tenant_record(
        "overall".into(),
        config.rate * (config.tenants as f64 - 1.0 + config.hog_factor),
        &all,
    );
    println!(
        "overall: {} sent, {} ok, {} throttled, {} errors in {:.3} s",
        overall.sent,
        overall.ok,
        overall.throttled,
        overall.errors,
        elapsed.as_secs_f64()
    );

    let errors = overall.errors + transport_errors.load(Ordering::SeqCst);
    if let Some(path) = &config.bench_out {
        let record = MixedBenchRecord {
            version: 1,
            bench: "loadgen-mixed",
            tenants: config.tenants,
            rate_per_tenant: config.rate,
            hog_factor: config.hog_factor,
            requests: overall.sent,
            wall_secs: elapsed.as_secs_f64(),
            per_tenant: per_tenant_records,
            overall,
        };
        match atena_bench::dump_json_to(std::path::Path::new(path), &record) {
            Ok(()) => println!("bench record written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }
    if errors > 0 {
        eprintln!("FAIL: {errors} non-throttle errors");
        return 1;
    }
    0
}

// ---- self-hosted batch sweep -------------------------------------------

/// Per-batch-size outcome of the self-hosted sweep.
#[derive(serde::Serialize)]
struct BatchServingSweep {
    max_batch: usize,
    qps: f64,
    speedup_vs_batch1: f64,
    mean_occupancy: f64,
    queue_wait_p95_us: f64,
    latency: LatencyRecord,
}

/// The persisted `BENCH_batch_serving.json` schema (`version` guards
/// consumers against silent shape drift).
#[derive(serde::Serialize)]
struct BatchServingRecord {
    version: u32,
    bench: &'static str,
    dataset: String,
    requests: usize,
    concurrency: usize,
    sweeps: Vec<BatchServingSweep>,
    identical_across_batches: bool,
}

/// Spawn one in-process server per batch size, run the closed-loop sweep
/// against each, and require bit-identical responses across all batch
/// sizes. Returns the process exit code.
fn run_batch_sweep(config: &Config) -> i32 {
    let path = config.checkpoint.as_deref().expect("checkpoint is set");
    let bundle = match atena_core::PolicyBundle::load(std::path::Path::new(path)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot load checkpoint {path}: {e}");
            return 2;
        }
    };
    let Some(dataset) = atena_data::dataset_by_id(&bundle.dataset) else {
        eprintln!(
            "checkpoint was trained on dataset {:?}, which is not built in",
            bundle.dataset
        );
        return 2;
    };
    println!(
        "batch sweep: {} requests × {} connections per batch size {:?} (response cache off)",
        config.requests, config.concurrency, config.batch_sizes
    );
    let mut sweeps: Vec<BatchServingSweep> = Vec::new();
    let mut reference_body: Option<String> = None;
    let mut identical = true;
    for &max_batch in &config.batch_sizes {
        let engine = match atena_server::Engine::new(bundle.clone(), dataset.frame.clone()) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("cannot build engine: {e}");
                return 2;
            }
        };
        let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
        let server = match atena_server::Server::bind_with_telemetry(
            atena_server::ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: config.concurrency.max(2),
                cache_size: 0, // every request decodes — the batcher's food
                max_batch,
                ..Default::default()
            },
            engine,
            Arc::clone(&telemetry),
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot bind server for max_batch={max_batch}: {e}");
                return 1;
            }
        };
        let addr = server.local_addr().expect("bound server has an address");
        let handle = server.spawn().expect("server thread spawns");

        let mut sweep_config = config.clone();
        sweep_config.addr = addr.to_string();
        // The server only serves the dataset its policy was trained on.
        sweep_config.dataset = bundle.dataset.clone();
        let body = request_body(&sweep_config);
        let raw_request = format!(
            "POST /v1/notebook HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes();
        let remaining = Arc::new(AtomicUsize::new(config.requests));
        let started = Instant::now();
        let workers: Vec<_> = (0..config.concurrency)
            .map(|_| {
                let sweep_config = sweep_config.clone();
                let raw_request = raw_request.clone();
                let remaining = Arc::clone(&remaining);
                std::thread::spawn(move || worker(&sweep_config, &raw_request, &remaining))
            })
            .collect();
        let mut latencies = Vec::new();
        let mut bodies: Vec<String> = Vec::new();
        for w in workers {
            match w.join().expect("worker panicked") {
                Ok((lat, bod, _hits)) => {
                    latencies.extend(lat);
                    bodies.extend(bod);
                }
                Err(e) => {
                    eprintln!("max_batch={max_batch} worker error: {e}");
                    handle.shutdown();
                    return 1;
                }
            }
        }
        let elapsed = started.elapsed();
        let snap = telemetry.snapshot();
        handle.shutdown();

        if latencies.is_empty() {
            eprintln!("max_batch={max_batch}: no successful requests");
            return 1;
        }
        // Identity within the run *and* against the other batch sizes:
        // every request is identical, so every response must be too.
        let reference = reference_body.get_or_insert_with(|| bodies[0].clone());
        let divergent = bodies.iter().filter(|b| *b != reference).count();
        if divergent > 0 {
            eprintln!("max_batch={max_batch}: {divergent} responses diverged");
            identical = false;
        }
        latencies.sort();
        let total: Duration = latencies.iter().sum();
        let qps = latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9);
        let base_qps = sweeps.first().map_or(qps, |s| s.qps);
        let occupancy = snap.histogram("batch.occupancy");
        let sweep = BatchServingSweep {
            max_batch,
            qps,
            speedup_vs_batch1: qps / base_qps.max(1e-9),
            mean_occupancy: occupancy.map_or(0.0, |o| o.mean),
            queue_wait_p95_us: snap.histogram("batch.queue_wait_us").map_or(0.0, |q| q.p95),
            latency: LatencyRecord {
                mean_ms: total.as_secs_f64() * 1e3 / latencies.len() as f64,
                p50_ms: quantile(&latencies, 0.50).as_secs_f64() * 1e3,
                p95_ms: quantile(&latencies, 0.95).as_secs_f64() * 1e3,
                p99_ms: quantile(&latencies, 0.99).as_secs_f64() * 1e3,
            },
        };
        println!(
            "max_batch={max_batch:<3} qps {:>8.1}  speedup {:>5.2}×  occupancy {:>5.2}  \
             p50 {:>8.3} ms  p95 {:>8.3} ms  p99 {:>8.3} ms",
            sweep.qps,
            sweep.speedup_vs_batch1,
            sweep.mean_occupancy,
            sweep.latency.p50_ms,
            sweep.latency.p95_ms,
            sweep.latency.p99_ms
        );
        sweeps.push(sweep);
    }
    if identical {
        println!(
            "batch determinism: OK — responses identical across batch sizes {:?}",
            config.batch_sizes
        );
    }
    if let Some(path) = &config.batch_bench_out {
        let record = BatchServingRecord {
            version: 1,
            bench: "loadgen-batch",
            dataset: bundle.dataset.clone(),
            requests: config.requests,
            concurrency: config.concurrency,
            sweeps,
            identical_across_batches: identical,
        };
        match atena_bench::dump_json_to(std::path::Path::new(path), &record) {
            Ok(()) => println!("batch bench record written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
        }
    }
    if identical {
        0
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    if config.checkpoint.is_some() {
        std::process::exit(run_batch_sweep(&config));
    }
    if config.mode == Mode::Mixed {
        std::process::exit(run_mixed(&config));
    }
    let body = request_body(&config);
    let raw_request = format!(
        "POST /v1/notebook HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n\r\n{body}",
        config.addr,
        body.len()
    )
    .into_bytes();

    println!(
        "loadgen: {} requests, {} connections -> http://{}/v1/notebook {body}",
        config.requests, config.concurrency, config.addr
    );
    let remaining = Arc::new(AtomicUsize::new(config.requests));
    let failures: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let started = Instant::now();
    let workers: Vec<_> = (0..config.concurrency)
        .map(|_| {
            let config = config.clone();
            let raw_request = raw_request.clone();
            let remaining = Arc::clone(&remaining);
            let failures = Arc::clone(&failures);
            std::thread::spawn(move || match worker(&config, &raw_request, &remaining) {
                Ok(result) => result,
                Err(e) => {
                    failures.lock().unwrap().push(e);
                    (Vec::new(), Vec::new(), 0)
                }
            })
        })
        .collect();

    let mut latencies = Vec::new();
    let mut bodies: Vec<String> = Vec::new();
    let mut cache_hits = 0usize;
    for w in workers {
        let (lat, bod, hits) = w.join().expect("worker panicked");
        latencies.extend(lat);
        bodies.extend(bod);
        cache_hits += hits;
    }
    let elapsed = started.elapsed();

    for failure in failures.lock().unwrap().iter() {
        eprintln!("worker error: {failure}");
    }
    if latencies.is_empty() {
        eprintln!("no successful requests");
        std::process::exit(1);
    }

    // Identical requests must yield identical notebooks.
    let reference = &bodies[0];
    let divergent = bodies.iter().filter(|b| *b != reference).count();

    latencies.sort();
    let total: Duration = latencies.iter().sum();
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!("requests     {:>10}", latencies.len());
    println!("cache hits   {:>10}", cache_hits);
    println!("wall time    {:>10.3} s", elapsed.as_secs_f64());
    println!("QPS          {:>10.1}", latencies.len() as f64 / secs);
    println!(
        "latency mean {:>10.3} ms",
        total.as_secs_f64() * 1e3 / latencies.len() as f64
    );
    for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        println!(
            "latency {label}  {:>10.3} ms",
            quantile(&latencies, q).as_secs_f64() * 1e3
        );
    }
    if let Some(path) = &config.bench_out {
        let record = BenchRecord {
            version: 1,
            bench: "loadgen",
            dataset: config.dataset.clone(),
            requests: latencies.len(),
            concurrency: config.concurrency,
            wall_secs: elapsed.as_secs_f64(),
            qps: latencies.len() as f64 / secs,
            latency: LatencyRecord {
                mean_ms: total.as_secs_f64() * 1e3 / latencies.len() as f64,
                p50_ms: quantile(&latencies, 0.50).as_secs_f64() * 1e3,
                p95_ms: quantile(&latencies, 0.95).as_secs_f64() * 1e3,
                p99_ms: quantile(&latencies, 0.99).as_secs_f64() * 1e3,
            },
            cache_hits,
            identical_responses: divergent == 0,
        };
        match atena_bench::dump_json_to(std::path::Path::new(path), &record) {
            Ok(()) => println!("bench record written to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if divergent > 0 {
        eprintln!("FAIL: {divergent} responses diverged from the first");
        std::process::exit(1);
    }
    println!("all responses identical");
    if !failures.lock().unwrap().is_empty() {
        std::process::exit(1);
    }
}
