//! Figure 4b — % of relevant insights gathered per system on the
//! cyber-security datasets.
//!
//! The paper counts how many insights (out of the challenge's official
//! solution) users list after passively viewing a notebook; here the
//! planted-insight predicates are evaluated directly against the notebook's
//! views (no human in the loop). Paper anchors: Gold-Standard ≈ 65%,
//! ATENA ≈ 46%, EDA-Traces ≈ 35%, OTS-DRL-B ≈ 17%, Greedy-IO ≈ 5%.

use atena_bench::{dump_json, generate_for, render_table, Scale, System};
use atena_core::Strategy;
use atena_data::{all_cyber, insight_coverage};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    system: String,
    per_dataset: Vec<(String, f64)>,
    mean_pct: f64,
}

fn main() {
    atena_bench::init_telemetry("fig4b");
    let scale = Scale::from_env();
    let datasets = all_cyber();
    let systems = [
        System::GoldStandard,
        System::Generated(Strategy::Atena),
        System::EdaTraces,
        System::Generated(Strategy::GreedyIo),
        System::Generated(Strategy::OtsDrlB),
    ];

    let mut rows = Vec::new();
    for system in systems {
        atena_telemetry::info!("{} ...", system.name());
        let mut per_dataset = Vec::new();
        for dataset in &datasets {
            let notebooks = generate_for(system, dataset, &scale, 23);
            let coverage = notebooks
                .iter()
                .map(|nb| insight_coverage(nb, &dataset.insights))
                .sum::<f64>()
                / notebooks.len().max(1) as f64;
            per_dataset.push((dataset.spec.name.clone(), coverage * 100.0));
            atena_telemetry::info!("  {}: {:.0}%", dataset.spec.id, coverage * 100.0);
        }
        let mean_pct = per_dataset.iter().map(|(_, v)| v).sum::<f64>() / per_dataset.len() as f64;
        rows.push(Row {
            system: system.name().to_string(),
            per_dataset,
            mean_pct,
        });
    }

    println!("\nFigure 4b: % of Gathered Insights (cyber datasets)\n");
    let headers = vec![
        "System", "Cyber #1", "Cyber #2", "Cyber #3", "Cyber #4", "Mean",
    ];
    let table = render_table(
        &headers,
        &rows
            .iter()
            .map(|r| {
                let mut cells = vec![r.system.clone()];
                cells.extend(r.per_dataset.iter().map(|(_, v)| format!("{v:.0}%")));
                cells.push(format!("{:.0}%", r.mean_pct));
                cells
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    match dump_json("fig4b_insights", &rows) {
        Ok(path) => println!("JSON written to {}", path.display()),
        Err(e) => atena_telemetry::warn!("could not write JSON: {e}"),
    }
    atena_bench::finish_telemetry();
}
