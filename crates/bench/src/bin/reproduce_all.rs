//! Run every experiment driver in sequence (Table 1, Figure 4a, Figure 4b,
//! Table 2, Figure 5, ablations). Equivalent to invoking each binary; the
//! consolidated stdout is what EXPERIMENTS.md records.

use std::process::Command;

fn main() {
    atena_bench::init_telemetry("reproduce_all");
    let binaries = [
        "table1_datasets",
        "fig4a_user_ratings",
        "fig4b_insights",
        "table2_aeda",
        "fig5_convergence",
        "ablations",
    ];
    let self_path = std::env::current_exe().expect("current exe");
    let bin_dir = self_path.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    for bin in binaries {
        println!("\n================ {bin} ================\n");
        let status = Command::new(bin_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nAll experiments completed.");
    } else {
        atena_telemetry::error!("failed experiments: {failures:?}");
        std::process::exit(1);
    }
    atena_bench::finish_telemetry();
}
