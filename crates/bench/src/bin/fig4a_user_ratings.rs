//! Figure 4a — qualitative evaluation: ratings (1–7) on Informativity,
//! Comprehensibility, Expertise, and Human-Equivalence for Gold-Standard,
//! ATENA, EDA-Traces, Greedy-IO, and OTS-DRL-B.
//!
//! The paper's 40-participant study is simulated by a deterministic rater
//! model (DESIGN.md §3.5). Paper anchors: Gold-Standard ≈ 6.8, ATENA ≈ 5.4,
//! EDA-Traces ≈ 4.3, OTS-DRL-B ≈ 3.4, Greedy-IO ≈ 1.4 (averaged criteria).

use atena_bench::{dump_json, f2, generate_for, render_table, Scale, System};
use atena_benchmark::{rate, Ratings};
use atena_core::{Atena, Notebook, Strategy};
use atena_data::all_datasets;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    system: String,
    informativity: f64,
    comprehensibility: f64,
    expertise: f64,
    human_equivalence: f64,
    overall: f64,
}

fn main() {
    atena_bench::init_telemetry("fig4a");
    let scale = Scale::from_env();
    let datasets = all_datasets();
    let systems = [
        System::GoldStandard,
        System::Generated(Strategy::Atena),
        System::EdaTraces,
        System::Generated(Strategy::GreedyIo),
        System::Generated(Strategy::OtsDrlB),
    ];

    let mut rows = Vec::new();
    for system in systems {
        atena_telemetry::info!("rating {} ...", system.name());
        let mut all_ratings: Vec<Ratings> = Vec::new();
        for dataset in &datasets {
            let golds: Vec<Notebook> = dataset
                .gold_standards
                .iter()
                .map(|g| Notebook::replay(&dataset.spec.name, &dataset.frame, g))
                .collect();
            // A fitted reward model for the rater's coherency probe.
            let reward = Atena::new(dataset.spec.name.clone(), dataset.frame.clone())
                .with_focal_attrs(dataset.focal_attrs())
                .with_config(scale.config(17))
                .build_reward();
            let notebooks = generate_for(system, dataset, &scale, 17);
            for nb in &notebooks {
                all_ratings.push(rate(nb, &dataset.frame, &reward, &golds, &dataset.insights));
            }
            atena_telemetry::info!("  {}: done", dataset.spec.id);
        }
        let n = all_ratings.len() as f64;
        let mean = |f: fn(&Ratings) -> f64| all_ratings.iter().map(f).sum::<f64>() / n;
        let row = Row {
            system: system.name().to_string(),
            informativity: mean(|r| r.informativity),
            comprehensibility: mean(|r| r.comprehensibility),
            expertise: mean(|r| r.expertise),
            human_equivalence: mean(|r| r.human_equivalence),
            overall: mean(Ratings::overall),
        };
        rows.push(row);
    }

    println!("\nFigure 4a: User Ratings of Examined Notebooks (scale 1-7, simulated rater)\n");
    let table = render_table(
        &[
            "System",
            "Informativity",
            "Comprehensibility",
            "Expertise",
            "Human-Equiv.",
            "Overall",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.system.clone(),
                    f2(r.informativity),
                    f2(r.comprehensibility),
                    f2(r.expertise),
                    f2(r.human_equivalence),
                    f2(r.overall),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    match dump_json("fig4a_user_ratings", &rows) {
        Ok(path) => println!("JSON written to {}", path.display()),
        Err(e) => atena_telemetry::warn!("could not write JSON: {e}"),
    }
    atena_bench::finish_telemetry();
}
