//! Table 2 — overall A-EDA benchmark results: Precision, T-BLEU-1/2/3, and
//! EDA-Sim for every baseline, averaged across the 8 experimental datasets.
//!
//! Paper reference values (Table 2):
//! ```text
//! ATN-IO     0.10 0.10 0.05 0.03 0.22
//! Greedy-IO  0.12 0.11 0.07 0.04 0.23
//! OTS-DRL    0.26 0.16 0.12 0.06 0.23
//! Greedy-CR  0.27 0.21 0.16 0.07 0.23
//! OTS-DRL-B  0.33 0.24 0.21 0.16 0.27
//! EDA-Traces 0.45 0.30 0.27 0.22 0.40
//! ATENA      0.45 0.45 0.41 0.31 0.46
//! ```
//! Absolute numbers differ (synthetic datasets, reduced schedule); the
//! ordering — interestingness-only at the bottom, compound-reward learners
//! in the middle, ATENA on top — is the reproduced result.

use atena_bench::{dump_json, f2, generate_for, render_table, Scale, System};
use atena_benchmark::{score_against, AedaScores};
use atena_core::{Notebook, Strategy};
use atena_data::all_datasets;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    baseline: String,
    scores: AedaScores,
}

fn main() {
    atena_bench::init_telemetry("table2");
    let scale = Scale::from_env();
    let datasets = all_datasets();

    let systems: Vec<System> = Strategy::ALL
        .iter()
        .take(5) // everything except ATENA, inserted after EDA-Traces below
        .map(|s| System::Generated(*s))
        .chain([System::EdaTraces, System::Generated(Strategy::Atena)])
        .collect();

    let mut rows = Vec::new();
    for system in systems {
        atena_telemetry::info!("evaluating {} ...", system.name());
        let mut per_dataset = Vec::new();
        for dataset in &datasets {
            let golds: Vec<Notebook> = dataset
                .gold_standards
                .iter()
                .map(|g| Notebook::replay(&dataset.spec.name, &dataset.frame, g))
                .collect();
            let notebooks = generate_for(system, dataset, &scale, 17);
            let scores: Vec<AedaScores> = notebooks
                .iter()
                .map(|nb| score_against(nb, &golds, dataset))
                .collect();
            per_dataset.push(AedaScores::mean(&scores));
            atena_telemetry::info!("  {}: done", dataset.spec.id);
        }
        rows.push(Row {
            baseline: system.name().to_string(),
            scores: AedaScores::mean(&per_dataset),
        });
    }

    println!("\nTable 2: Overall A-EDA Benchmark Results (avg over 8 datasets)\n");
    let table = render_table(
        &[
            "Baseline",
            "Precision",
            "T-BLEU-1",
            "T-BLEU-2",
            "T-BLEU-3",
            "EDA-Sim",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.baseline.clone(),
                    f2(r.scores.precision),
                    f2(r.scores.t_bleu_1),
                    f2(r.scores.t_bleu_2),
                    f2(r.scores.t_bleu_3),
                    f2(r.scores.eda_sim),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    match dump_json("table2_aeda", &rows) {
        Ok(path) => println!("JSON written to {}", path.display()),
        Err(e) => atena_telemetry::warn!("could not write JSON: {e}"),
    }
    atena_bench::finish_telemetry();
}
