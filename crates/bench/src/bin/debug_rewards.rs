//! Diagnostic: replay an operation sequence against a dataset and print the
//! per-step reward breakdown plus the coherency rule votes — the tool used
//! to audit reward-hacking behaviours (kept as part of the harness since it
//! is the fastest way to understand why an agent prefers a sequence).
//!
//! ```sh
//! cargo run --release -p atena-bench --bin debug_rewards [dataset-id]
//! ```

use atena_core::Atena;
use atena_data::dataset_by_id;
use atena_dataframe::CmpOp;
use atena_env::{EdaEnv, EnvConfig, ResolvedOp, RewardModel};
use atena_reward::Vote;

fn main() {
    atena_bench::init_telemetry("debug_rewards");
    let id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cyber1".to_string());
    let dataset = dataset_by_id(&id).expect("known dataset id");
    let atena = Atena::new(dataset.spec.name.clone(), dataset.frame.clone())
        .with_focal_attrs(dataset.focal_attrs());
    let reward = atena.build_reward();
    let w = reward.weights();
    println!(
        "weights: interestingness {:.2}, diversity {:.2}, coherency {:.2}\n",
        w.interestingness, w.diversity, w.coherency
    );

    // The churn pattern observed from a trained agent plus a gold-like path
    // for contrast.
    let churn: Vec<ResolvedOp> = vec![
        atena_data::g(
            "destination_port",
            atena_dataframe::AggFunc::Count,
            "length",
        ),
        atena_data::g("destination_ip", atena_dataframe::AggFunc::Count, "length"),
        atena_data::f("time", CmpOp::Ge, 3378i64),
        atena_data::f("time", CmpOp::Ge, 7070i64),
        atena_data::f("time", CmpOp::Ge, 7133i64),
        atena_data::f("time", CmpOp::Ge, 7160i64),
    ];
    let gold = dataset.gold_standards[0].clone();

    for (label, ops) in [("CHURN SEQUENCE", churn), ("GOLD SEQUENCE", gold)] {
        println!("==== {label} ====");
        let mut env = EdaEnv::new(
            dataset.frame.clone(),
            EnvConfig {
                episode_len: ops.len(),
                ..EnvConfig::default()
            },
        );
        env.reset();
        let mut total = 0.0;
        for op in &ops {
            let preview = env.preview(op);
            let (r, votes) = {
                let info = env.step_info(&preview);
                (reward.score(&info), reward.classifier().votes(&info))
            };
            total += r.total;
            let fired: Vec<String> = reward
                .classifier()
                .rule_names()
                .iter()
                .zip(&votes)
                .filter(|(_, v)| **v != Vote::Abstain)
                .map(|(n, v)| format!("{n}{}", if *v == Vote::Coherent { "+" } else { "-" }))
                .collect();
            println!(
                "  {:<55} I {:+.2} D {:+.2} C {:+.2} P {:+.2} => {:+.2}   [{}]",
                op.to_string(),
                r.interestingness,
                r.diversity,
                r.coherency,
                r.penalty,
                r.total,
                fired.join(" ")
            );
            env.commit(preview);
        }
        println!("  episode total: {total:+.2}\n");
    }
    atena_bench::finish_telemetry();
}
