//! Table 1 — the experimental datasets: name, size (rows), description.
//!
//! Regenerates the paper's dataset inventory from the synthetic generators,
//! and verifies the planted structure (insight/gold counts) along the way.

use atena_bench::{dump_json, render_table};
use atena_data::all_datasets;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    rows: usize,
    description: String,
    attributes: usize,
    insights: usize,
    gold_notebooks: usize,
}

fn main() {
    atena_bench::init_telemetry("table1");
    let datasets = all_datasets();
    let rows: Vec<Row> = datasets
        .iter()
        .map(|d| Row {
            dataset: d.spec.name.clone(),
            rows: d.frame.n_rows(),
            description: d.spec.description.clone(),
            attributes: d.frame.n_cols(),
            insights: d.insights.len(),
            gold_notebooks: d.gold_standards.len(),
        })
        .collect();

    println!("Table 1: Experimental Datasets\n");
    let table = render_table(
        &[
            "Dataset",
            "Size (rows)",
            "Description",
            "Attrs",
            "Insights",
            "Golds",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.rows.to_string(),
                    r.description.clone(),
                    r.attributes.to_string(),
                    r.insights.to_string(),
                    r.gold_notebooks.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    match dump_json("table1_datasets", &rows) {
        Ok(path) => println!("JSON written to {}", path.display()),
        Err(e) => atena_telemetry::warn!("could not write JSON: {e}"),
    }
    atena_bench::finish_telemetry();
}
