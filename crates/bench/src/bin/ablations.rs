//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Output architecture** — twofold multi-softmax vs flat softmax
//!    (network size and final reward);
//! 2. **Term binning** — flat policy with frequency bins vs explicit terms;
//! 3. **Entropy regularization** — on vs off (premature convergence);
//! 4. **Reward components** — full compound reward vs interestingness-only
//!    (the ATN-IO ablation), measured on the A-EDA metrics.

use atena_bench::{dump_json, f2, render_table, run_strategy, Scale};
use atena_benchmark::score_notebook;
use atena_core::{Atena, Strategy};
use atena_data::cyber2;
use atena_env::EdaEnv;
use atena_rl::{ActionMapper, PpoConfig, Trainer, TrainerConfig, TwofoldConfig, TwofoldPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::sync::Arc;

#[derive(Serialize)]
struct AblationRow {
    ablation: String,
    variant: String,
    metric: String,
    value: f64,
}

fn main() {
    atena_bench::init_telemetry("ablations");
    let scale = Scale::from_env();
    let dataset = cyber2();
    let mut records: Vec<AblationRow> = Vec::new();

    // --- 1 & 2: architecture and binning (shared with Table 2 baselines).
    atena_telemetry::info!("architecture & binning ...");
    for strategy in [Strategy::Atena, Strategy::OtsDrlB, Strategy::OtsDrl] {
        let result = run_strategy(strategy, &dataset, &scale, 41);
        records.push(AblationRow {
            ablation: "output-architecture".into(),
            variant: strategy.name().into(),
            metric: "best_episode_reward".into(),
            value: result.best_reward,
        });
    }
    // Network sizes: pre-output vs flat output node counts.
    let env = EdaEnv::new(dataset.frame.clone(), scale.config(41).env);
    let head_sizes = env.action_space().head_sizes();
    records.push(AblationRow {
        ablation: "output-architecture".into(),
        variant: "twofold".into(),
        metric: "output_layer_nodes".into(),
        value: head_sizes.pre_output_size() as f64,
    });
    records.push(AblationRow {
        ablation: "output-architecture".into(),
        variant: "flat-binned".into(),
        metric: "output_layer_nodes".into(),
        value: env.action_space().flat_size_binned() as f64,
    });

    // --- 3: entropy regularization on/off with the twofold policy.
    atena_telemetry::info!("entropy regularization ...");
    for (variant, coef) in [("entropy-on", 0.02f32), ("entropy-off", 0.0)] {
        let cfg = scale.config(43);
        let probe = EdaEnv::new(dataset.frame.clone(), cfg.env.clone());
        let mut rng = StdRng::seed_from_u64(43);
        let policy = TwofoldPolicy::new(
            probe.observation_dim(),
            probe.action_space().head_sizes(),
            TwofoldConfig { hidden: cfg.hidden },
            &mut rng,
        );
        let reward = Atena::new(dataset.spec.name.clone(), dataset.frame.clone())
            .with_focal_attrs(dataset.focal_attrs())
            .with_config(cfg.clone())
            .build_reward();
        let mut trainer = Trainer::new(
            Arc::new(policy),
            ActionMapper::Twofold,
            Arc::new(reward),
            &dataset.frame,
            cfg.env.clone(),
            TrainerConfig {
                ppo: PpoConfig {
                    entropy_coef: coef,
                    ..Default::default()
                },
                n_workers: scale.n_workers,
                seed: 43,
                ..Default::default()
            },
        );
        let log = trainer.train(scale.train_steps);
        let final_mean = log
            .curve
            .last()
            .map(|p| p.mean_episode_reward)
            .unwrap_or(0.0);
        records.push(AblationRow {
            ablation: "entropy-regularization".into(),
            variant: variant.into(),
            metric: "final_mean_episode_reward".into(),
            value: final_mean,
        });
        records.push(AblationRow {
            ablation: "entropy-regularization".into(),
            variant: variant.into(),
            metric: "best_episode_reward".into(),
            value: log.best_episode.map(|e| e.total_reward).unwrap_or(0.0),
        });
    }

    // --- 4: reward-component ablation on benchmark quality.
    atena_telemetry::info!("reward components ...");
    for strategy in [Strategy::Atena, Strategy::AtnIo] {
        let result = run_strategy(strategy, &dataset, &scale, 47);
        let scores = score_notebook(&result.notebook, &dataset);
        records.push(AblationRow {
            ablation: "reward-components".into(),
            variant: strategy.name().into(),
            metric: "precision".into(),
            value: scores.precision,
        });
        records.push(AblationRow {
            ablation: "reward-components".into(),
            variant: strategy.name().into(),
            metric: "eda_sim".into(),
            value: scores.eda_sim,
        });
    }

    println!("\nAblation results (dataset: {})\n", dataset.spec.name);
    let table = render_table(
        &["Ablation", "Variant", "Metric", "Value"],
        &records
            .iter()
            .map(|r| {
                vec![
                    r.ablation.clone(),
                    r.variant.clone(),
                    r.metric.clone(),
                    f2(r.value),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!("{table}");
    match dump_json("ablations", &records) {
        Ok(path) => println!("JSON written to {}", path.display()),
        Err(e) => atena_telemetry::warn!("could not write JSON: {e}"),
    }
    atena_bench::finish_telemetry();
}
