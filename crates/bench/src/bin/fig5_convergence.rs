//! Figure 5 — learning-convergence comparison: mean episode reward as a
//! function of training steps for ATENA, OTS-DRL-B, OTS-DRL, and the
//! non-learning Greedy-CR (a flat line), on the paper's two representative
//! datasets, Flights #4 and Cyber #2.
//!
//! Expected shape (paper §6.4): OTS-DRL stabilizes slowly near a suboptimal
//! reward; OTS-DRL-B converges higher thanks to term binning; ATENA
//! converges 2–3× faster to the highest reward and beats Greedy-CR's
//! non-learned ceiling.

use atena_bench::{dump_json, f2, render_table, run_strategy, Scale};
use atena_core::Strategy;
use atena_data::{cyber2, flights4};
use serde::Serialize;

#[derive(Serialize)]
struct Curve {
    dataset: String,
    system: String,
    /// `(steps, mean_episode_reward)` samples.
    points: Vec<(usize, f64)>,
    /// Greedy baseline level (for the dashed line), if applicable.
    flat_level: Option<f64>,
}

fn main() {
    atena_bench::init_telemetry("fig5");
    let mut scale = Scale::from_env();
    // Convergence curves need a longer horizon than the quality tables;
    // default to 25k steps unless the user pinned a scale explicitly.
    if std::env::var("ATENA_TRAIN_STEPS").is_err() {
        scale.train_steps = 25_000;
    }
    let datasets = [flights4(), cyber2()];
    let learned = [Strategy::Atena, Strategy::OtsDrlB, Strategy::OtsDrl];

    let mut curves: Vec<Curve> = Vec::new();
    for dataset in &datasets {
        for strategy in learned {
            atena_telemetry::info!("training {} on {} ...", strategy.name(), dataset.spec.id);
            let result = run_strategy(strategy, dataset, &scale, 31);
            curves.push(Curve {
                dataset: dataset.spec.name.clone(),
                system: strategy.name().to_string(),
                points: result
                    .curve
                    .iter()
                    .map(|p| (p.steps, p.mean_episode_reward))
                    .collect(),
                flat_level: None,
            });
        }
        atena_telemetry::info!("greedy baseline on {} ...", dataset.spec.id);
        let greedy = run_strategy(Strategy::GreedyCr, dataset, &scale, 31);
        curves.push(Curve {
            dataset: dataset.spec.name.clone(),
            system: "Greedy-CR".to_string(),
            points: Vec::new(),
            flat_level: Some(greedy.best_reward),
        });
    }

    for dataset in &datasets {
        println!(
            "\nFigure 5 — {}: mean episode reward vs training steps\n",
            dataset.spec.name
        );
        // Sample each curve at a few checkpoints for the text rendering.
        let mut rows = Vec::new();
        for c in curves.iter().filter(|c| c.dataset == dataset.spec.name) {
            if let Some(level) = c.flat_level {
                rows.push(vec![
                    c.system.clone(),
                    format!("(flat) {}", f2(level)),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
            let sample = |frac: f64| -> String {
                if c.points.is_empty() {
                    return String::new();
                }
                let idx = ((c.points.len() - 1) as f64 * frac) as usize;
                format!("{} @{}", f2(c.points[idx].1), c.points[idx].0)
            };
            rows.push(vec![
                c.system.clone(),
                sample(0.1),
                sample(0.4),
                sample(0.7),
                sample(1.0),
            ]);
        }
        let table = render_table(&["System", "early", "mid", "late", "final"], &rows);
        println!("{table}");
    }

    // Convergence-speed summary: steps to reach 90% of the final reward.
    println!("\nConvergence speed (steps to reach 90% of own final mean reward):\n");
    let mut rows = Vec::new();
    for c in &curves {
        if c.points.is_empty() {
            continue;
        }
        let final_reward = c.points.last().unwrap().1;
        let threshold = if final_reward > 0.0 {
            0.9 * final_reward
        } else {
            final_reward
        };
        let steps = c
            .points
            .iter()
            .find(|(_, r)| *r >= threshold)
            .map(|(s, _)| *s)
            .unwrap_or(c.points.last().unwrap().0);
        rows.push(vec![
            c.dataset.clone(),
            c.system.clone(),
            steps.to_string(),
            f2(final_reward),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Dataset", "System", "steps to 90%", "final reward"],
            &rows
        )
    );

    match dump_json("fig5_convergence", &curves) {
        Ok(path) => println!("JSON written to {}", path.display()),
        Err(e) => atena_telemetry::warn!("could not write JSON: {e}"),
    }
    atena_bench::finish_telemetry();
}
