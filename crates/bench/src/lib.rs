//! Shared support for the experiment driver binaries: system-under-test
//! enumeration, scaled-down default schedules, table formatting, and JSON
//! result dumps.
//!
//! The paper trains for 2.5M steps over 6–11 hours on a 24-core Xeon
//! (§6.4); the drivers here default to a schedule of a few thousand steps
//! per learned system, which preserves the qualitative shape of every
//! result (baseline ordering, convergence ranking). Scale up with the
//! `ATENA_TRAIN_STEPS` environment variable.

#![forbid(unsafe_code)]

pub mod chaos;

use atena_core::{Atena, AtenaConfig, GenerationResult, Notebook, Strategy};
use atena_data::{simulate_traces, ExperimentalDataset, TraceConfig};
use atena_env::EnvConfig;
use atena_rl::TrainerConfig;
use serde::Serialize;
use std::io::Write as _;
use std::path::PathBuf;

/// Every system the experiments compare: the six generation strategies plus
/// the two human-derived baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// One of the auto-generation strategies.
    Generated(Strategy),
    /// Gold-standard notebooks (curated; the quality upper bound).
    GoldStandard,
    /// Notebooks replayed from (simulated) analyst traces.
    EdaTraces,
}

impl System {
    /// Display name as it appears in the paper's tables/figures.
    pub fn name(&self) -> &'static str {
        match self {
            System::Generated(s) => s.name(),
            System::GoldStandard => "Gold-Standard",
            System::EdaTraces => "EDA-Traces",
        }
    }
}

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Training steps per learned system per dataset.
    pub train_steps: usize,
    /// Episode length (notebook size).
    pub episode_len: usize,
    /// Rollout workers.
    pub n_workers: usize,
    /// Random-probe steps for reward calibration.
    pub probe_steps: usize,
}

impl Scale {
    /// The default reduced schedule, overridable via `ATENA_TRAIN_STEPS`.
    pub fn from_env() -> Scale {
        let train_steps = std::env::var("ATENA_TRAIN_STEPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10_000);
        Scale {
            train_steps,
            episode_len: 12,
            n_workers: 4,
            probe_steps: 300,
        }
    }

    /// A tiny schedule for smoke tests.
    pub fn smoke() -> Scale {
        Scale {
            train_steps: 600,
            episode_len: 6,
            n_workers: 2,
            probe_steps: 100,
        }
    }

    /// The [`AtenaConfig`] realizing this scale.
    pub fn config(&self, seed: u64) -> AtenaConfig {
        AtenaConfig {
            env: EnvConfig {
                episode_len: self.episode_len,
                n_bins: 10,
                history_window: 3,
                seed,
            },
            trainer: TrainerConfig {
                // Lanes track the worker knob so experiment scale is
                // unchanged; extra threads beyond lanes would idle anyway.
                n_lanes: self.n_workers,
                n_workers: self.n_workers,
                rollout_len: 96,
                seed,
                ..Default::default()
            },
            train_steps: self.train_steps,
            probe_steps: self.probe_steps,
            hidden: [128, 128],
            flat_term_cap: 10,
        }
    }
}

/// Generate notebooks for one system on one dataset. For learned/greedy
/// systems this trains/searches (one notebook); for gold/traces it replays
/// the whole set.
pub fn generate_for(
    system: System,
    dataset: &ExperimentalDataset,
    scale: &Scale,
    seed: u64,
) -> Vec<Notebook> {
    match system {
        System::Generated(strategy) => {
            let result = run_strategy(strategy, dataset, scale, seed);
            vec![result.notebook]
        }
        System::GoldStandard => dataset
            .gold_standards
            .iter()
            .map(|g| Notebook::replay(&dataset.spec.name, &dataset.frame, g))
            .collect(),
        System::EdaTraces => {
            let traces = simulate_traces(
                dataset,
                3,
                TraceConfig {
                    length: scale.episode_len,
                    seed,
                    ..Default::default()
                },
            );
            traces
                .iter()
                .map(|t| Notebook::replay(&dataset.spec.name, &dataset.frame, t))
                .collect()
        }
    }
}

/// Run one generation strategy, returning the full result (with curve).
pub fn run_strategy(
    strategy: Strategy,
    dataset: &ExperimentalDataset,
    scale: &Scale,
    seed: u64,
) -> GenerationResult {
    Atena::new(dataset.spec.name.clone(), dataset.frame.clone())
        .with_focal_attrs(dataset.focal_attrs())
        .with_config(scale.config(seed))
        .with_strategy(strategy)
        .generate()
}

/// Render an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Write an experiment's JSON record under `target/experiments/`.
pub fn dump_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string()))
            .join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(
        serde_json::to_string_pretty(value)
            .expect("serializable")
            .as_bytes(),
    )?;
    Ok(path)
}

/// Write a JSON record to an explicit path (the `--bench-out` flag of the
/// driver binaries), creating parent directories as needed.
pub fn dump_json_to<T: Serialize>(path: &std::path::Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(
        serde_json::to_string_pretty(value)
            .expect("serializable")
            .as_bytes(),
    )?;
    file.write_all(b"\n")
}

/// Format a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Set up telemetry for an experiment driver. The log level comes from
/// `$ATENA_LOG` (default info); when `$ATENA_METRICS_OUT` names a file, all
/// training telemetry streams there as JSONL (same schema as the CLI's
/// `--metrics-out`).
pub fn init_telemetry(bin: &str) {
    if let Ok(path) = std::env::var("ATENA_METRICS_OUT") {
        if !path.is_empty() {
            match atena_telemetry::global().set_jsonl_sink(std::path::Path::new(&path)) {
                Ok(()) => atena_telemetry::info!("[{bin}] streaming telemetry to {path}"),
                Err(e) => atena_telemetry::warn!("[{bin}] cannot open {path}: {e}"),
            }
        }
    }
}

/// Flush aggregate counters/gauges/histograms to the JSONL sink (no-op
/// without one) at the end of a driver run.
pub fn finish_telemetry() {
    atena_telemetry::global().flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_data::cyber2;

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["name", "score"],
            &[
                vec!["ATENA".into(), "0.46".into()],
                vec!["Greedy-IO".into(), "0.23".into()],
            ],
        );
        assert!(t.contains("ATENA"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn gold_and_trace_generation() {
        let d = cyber2();
        let scale = Scale::smoke();
        let golds = generate_for(System::GoldStandard, &d, &scale, 0);
        assert_eq!(golds.len(), d.gold_standards.len());
        let traces = generate_for(System::EdaTraces, &d, &scale, 0);
        assert_eq!(traces.len(), 3);
        for t in &traces {
            assert_eq!(t.len(), scale.episode_len);
        }
    }

    #[test]
    fn greedy_system_generation() {
        let d = cyber2();
        let scale = Scale::smoke();
        let nbs = generate_for(System::Generated(Strategy::GreedyCr), &d, &scale, 0);
        assert_eq!(nbs.len(), 1);
        assert_eq!(nbs[0].len(), scale.episode_len);
    }

    #[test]
    fn system_names() {
        assert_eq!(System::GoldStandard.name(), "Gold-Standard");
        assert_eq!(System::Generated(Strategy::Atena).name(), "ATENA");
    }
}
