//! Integration test for the chaos harness itself: train a tiny policy,
//! self-host a server the way the `chaos` binary does, run the full
//! byzantine scenario matrix (every typed outcome must hold), then a
//! short CI-sized soak asserting flat RSS, zero transcript divergence,
//! monotone counters, and registry evictions at capacity.
//!
//! The soak length defaults to 8 s; set `ATENA_SOAK_SECS` to stretch it
//! for longer local runs.

use atena_bench::chaos::{run_scenario, run_soak, scenario_matrix, ChaosTarget, SoakOptions};
use atena_core::{train_policy_bundle, AtenaConfig, PolicyBundle, Strategy};
use atena_dataframe::{AttrRole, DataFrame};
use std::sync::Arc;
use std::time::Duration;

fn base() -> DataFrame {
    DataFrame::builder()
        .str(
            "proto",
            AttrRole::Categorical,
            (0..60).map(|i| Some(if i % 5 == 0 { "udp" } else { "tcp" })),
        )
        .int(
            "len",
            AttrRole::Numeric,
            (0..60).map(|i| Some((i * 13 % 31) as i64)),
        )
        .build()
        .unwrap()
}

fn tiny_bundle() -> PolicyBundle {
    let mut config = AtenaConfig::quick();
    config.train_steps = 300;
    config.probe_steps = 60;
    config.env.episode_len = 4;
    train_policy_bundle("tiny", base(), vec![], config, Strategy::Atena).unwrap()
}

#[test]
fn scenario_matrix_and_soak_smoke_against_live_server() {
    let bundle = tiny_bundle();
    let offline = atena_server::Engine::new(bundle.clone(), base()).unwrap();
    let engine = atena_server::Engine::new(bundle.clone(), base()).unwrap();

    // Offline references: the exact bytes the server must return for
    // each seed (serial decode; the server microbatches — determinism
    // says the bytes cannot differ).
    let episode_len = 3;
    let good_requests: Vec<(String, String)> = (0..4u64)
        .map(|seed| {
            let request = offline
                .validate(&bundle.dataset, Some(episode_len), Some(seed))
                .unwrap();
            let expected = serde_json::to_string(&offline.decode(&request).unwrap()).unwrap();
            let body = format!(
                "{{\"dataset\":{:?},\"episode_len\":{episode_len},\"seed\":{seed}}}",
                bundle.dataset
            );
            (body, expected)
        })
        .collect();

    // Mirror the chaos binary's hostile-friendly config: short deadline,
    // microbatching on, tiny registry budget, tight admission.
    let request_timeout = Duration::from_millis(700);
    let config = atena_server::ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        cache_size: 8,
        request_timeout,
        max_batch: 4,
        batch_window: Duration::from_millis(1),
        registry: atena_registry::RegistryConfig {
            budget_bytes: 2048,
            max_datasets: 4,
            tenant_quota_bytes: 2048,
            limits: atena_dataframe::CsvLimits {
                max_bytes: 4096,
                max_rows: 10_000,
                max_cols: 16,
            },
        },
        tenant_limits: atena_registry::TenantLimits {
            max_inflight: 2,
            retry_after_secs: 1,
        },
        ..Default::default()
    };
    let max_body_bytes = config.max_body_bytes;
    let telemetry = Arc::new(atena_telemetry::MetricsRegistry::new());
    let server =
        atena_server::Server::bind_with_telemetry(config, engine, Arc::clone(&telemetry)).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.spawn().unwrap();

    let target = ChaosTarget {
        addr: addr.to_string(),
        good_body: good_requests[0].0.clone(),
        expected_body: good_requests[0].1.clone(),
        request_timeout,
        max_body_bytes,
    };

    // 1. Every scenario in the matrix must hit its typed expectation,
    //    leave the server healthy, and leave good responses
    //    byte-identical to the offline decode.
    for scenario in scenario_matrix(&target) {
        let report = run_scenario(&target, &scenario);
        assert!(
            report.pass,
            "{}: expected [{}], observed [{}] (probe_ok={}, good_shot_ok={})",
            report.scenario, report.expected, report.observed, report.probe_ok, report.good_shot_ok
        );
    }

    // 2. CI-sized soak: mixed good/byzantine traffic with the registry
    //    churning at capacity. Flat memory, monotone counters, zero
    //    divergence, evictions advancing.
    let soak_secs: u64 = std::env::var("ATENA_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let mut base_csv = String::from("k,v\n");
    for r in 0..30 {
        base_csv.push_str(&format!("row{r},{r}\n"));
    }
    let report = run_soak(
        &target,
        &SoakOptions {
            duration: Duration::from_secs(soak_secs),
            rss_budget_bytes: 64 << 20,
            good_requests,
            upload_csv: Some(base_csv),
            sample_every: Duration::from_millis(500),
        },
    );
    assert!(report.pass, "soak failures: {:?}", report.failures);
    assert_eq!(report.divergences, 0);
    assert!(report.good_requests > 0);
    assert!(report.byzantine_shots > 0);
    assert!(report.counters_monotone);
    assert!(
        report.evictions_delta >= 1,
        "registry at capacity must evict during the soak"
    );
    assert!(report.metrics_samples >= 2);
    if cfg!(target_os = "linux") {
        let first = report.rss_first_bytes.expect("rss gauge sampled");
        let max = report.rss_max_bytes.unwrap();
        assert!(
            max.saturating_sub(first) <= 64 << 20,
            "RSS grew {} -> {max}",
            first
        );
    }

    // 3. Through the entire run: no worker panics, no aborted batches
    //    left behind by byzantine clients.
    let snap = telemetry.snapshot();
    assert_eq!(snap.counter("server.pool.panics"), None);
    assert!(
        snap.counter("server.http.parse_errors").unwrap_or(0) > 0,
        "byzantine traffic must show up as parse errors"
    );

    handle.shutdown();
}
