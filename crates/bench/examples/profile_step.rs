//! Per-phase cost profile of the environment step loop, with and without
//! the shared display cache — run `profile_step [cache_capacity]`.
//!
//! Mimics the rollout engine's lane structure: 8 lanes sharing one base
//! frame (and, when capacity > 0, one display cache), stepped round-robin.

use atena_core::{Atena, AtenaConfig, Strategy};
use atena_env::{DisplayCache, EdaEnv};
use atena_rl::{ActionMapper, Policy, TwofoldConfig, TwofoldPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let capacity: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1024);
    let ds = atena_data::dataset_by_id("flights1").unwrap();
    let focal = ds.focal_attrs();
    let frame = ds.frame;
    let mut cfg = AtenaConfig::quick();
    cfg.probe_steps = 120;
    let reward: Arc<dyn atena_env::RewardModel> = Arc::new(
        Atena::new("flights1", frame.clone())
            .with_focal_attrs(focal)
            .with_config(cfg.clone())
            .with_strategy(Strategy::Atena)
            .build_reward(),
    );
    let probe = EdaEnv::new(frame.clone(), cfg.env.clone());
    let mut rng = StdRng::seed_from_u64(0);
    let policy = TwofoldPolicy::new(
        probe.observation_dim(),
        probe.action_space().head_sizes(),
        TwofoldConfig { hidden: [64, 64] },
        &mut rng,
    );
    let mapper = ActionMapper::Twofold;

    let cache = (capacity > 0).then(|| Arc::new(DisplayCache::new(capacity)));
    let mut template = EdaEnv::new(frame.clone(), cfg.env.clone());
    if let Some(cache) = &cache {
        template = template.with_display_cache(Arc::clone(cache));
    }
    let n_lanes = 8;
    let mut lanes: Vec<(EdaEnv, StdRng)> = (0..n_lanes)
        .map(|lane| {
            (
                template.fork_with_seed(1000 + lane as u64),
                StdRng::seed_from_u64(77 + lane as u64),
            )
        })
        .collect();

    let mut t_act = Duration::ZERO;
    let mut t_resolve = Duration::ZERO;
    let mut t_preview = Duration::ZERO;
    let mut t_reward = Duration::ZERO;
    let mut t_commit = Duration::ZERO;
    let mut t_preview_hit = Duration::ZERO;
    let mut t_preview_miss = Duration::ZERO;
    let (mut n_hit, mut n_miss) = (0u64, 0u64);
    let mut slow: Vec<(Duration, String)> = Vec::new();
    let mut ep = 0u64;
    let start = Instant::now();
    for _round in 0..240 {
        for (env, rng) in lanes.iter_mut() {
            let s0 = Instant::now();
            let obs = env.observation();
            let step = policy.act(&obs, 1.0, rng);
            let mapped = mapper.map(&step.choice);
            let s1 = Instant::now();
            let op = match &mapped {
                atena_rl::MappedAction::Binned(a) => env.resolve(a),
                atena_rl::MappedAction::Term(a) => env.resolve_flat_term(a),
            };
            let hits_before = cache.as_ref().map(|c| c.stats().hits).unwrap_or(0);
            let s2 = Instant::now();
            let preview = env.preview(&op);
            let s3 = Instant::now();
            let was_hit = cache.as_ref().map(|c| c.stats().hits).unwrap_or(0) > hits_before;
            if was_hit {
                t_preview_hit += s3 - s2;
                n_hit += 1;
            } else {
                t_preview_miss += s3 - s2;
                n_miss += 1;
            }
            let r = {
                let info = env.step_info(&preview);
                reward.score(&info)
            };
            let _ = r;
            let s4 = Instant::now();
            env.commit(preview);
            let s5 = Instant::now();
            t_act += s1 - s0;
            t_resolve += s2 - s1;
            t_preview += s3 - s2;
            t_reward += s4 - s3;
            t_commit += s5 - s4;
            let total = s5 - s0;
            if total > Duration::from_millis(2) {
                slow.push((
                    total,
                    format!(
                        "{op:?} | resolve={:?} preview={:?} reward={:?}",
                        s2 - s1,
                        s3 - s2,
                        s4 - s3
                    ),
                ));
            }
            if env.done() {
                ep += 1;
                env.reset_with_seed(5000 + ep);
            }
        }
    }
    let steps = 240 * n_lanes;
    println!(
        "cache={capacity} steps={steps} total={:?} ({:.0} steps/sec)",
        start.elapsed(),
        steps as f64 / start.elapsed().as_secs_f64()
    );
    println!("act={t_act:?} resolve={t_resolve:?} preview={t_preview:?} reward={t_reward:?} commit={t_commit:?}");
    if let Some(cache) = &cache {
        println!("cache stats: {:?}", cache.stats());
    }
    println!(
        "preview: {n_hit} hit previews in {t_preview_hit:?}, {n_miss} miss/uncached previews in {t_preview_miss:?}"
    );
    slow.sort_by(|a, b| b.0.cmp(&a.0));
    for (d, what) in slow.iter().take(10) {
        println!("{d:>12?}  {what}");
    }
}
