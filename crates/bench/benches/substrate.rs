//! Criterion micro-benchmarks for the substrates underneath every
//! experiment: dataframe operators, environment stepping, reward
//! evaluation, and the benchmark metrics.

use atena_benchmark::{eda_sim, precision, t_bleu};
use atena_core::Notebook;
use atena_data::{cyber1, cyber2};
use atena_dataframe::{AggFunc, CmpOp, Predicate};
use atena_env::RewardModel;
use atena_env::{EdaAction, EdaEnv, EnvConfig, FrequencyBins};
use atena_reward::{random_action, CoherencyConfig, CompoundReward};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dataframe(c: &mut Criterion) {
    let d = cyber1(); // 8648 rows
    let frame = d.frame;
    let mut g = c.benchmark_group("dataframe");
    g.bench_function("filter_eq_8648_rows", |b| {
        let pred = Predicate::new("protocol", CmpOp::Eq, "icmp");
        b.iter(|| black_box(frame.filter(&pred).unwrap().n_rows()))
    });
    g.bench_function("filter_contains_8648_rows", |b| {
        let pred = Predicate::new("info", CmpOp::Contains, "Echo");
        b.iter(|| black_box(frame.filter(&pred).unwrap().n_rows()))
    });
    g.bench_function("group_aggregate_8648_rows", |b| {
        b.iter(|| {
            black_box(
                frame
                    .group_aggregate(&["source_ip"], AggFunc::Avg, "length")
                    .unwrap()
                    .n_rows(),
            )
        })
    });
    g.bench_function("column_stats_all", |b| {
        b.iter(|| black_box(frame.all_column_stats().len()))
    });
    g.bench_function("value_distribution", |b| {
        b.iter(|| {
            black_box(
                frame
                    .value_distribution("destination_ip")
                    .unwrap()
                    .support_size(),
            )
        })
    });
    g.finish();
}

fn bench_env(c: &mut Criterion) {
    let d = cyber2(); // 348 rows
    let mut g = c.benchmark_group("env");
    g.bench_function("env_step_group", |b| {
        let mut env = EdaEnv::new(d.frame.clone(), EnvConfig::default());
        env.reset();
        b.iter(|| {
            if env.done() {
                env.reset();
            }
            black_box(
                env.step(&EdaAction::Group {
                    key: 3,
                    func: 0,
                    agg: 6,
                })
                .step,
            )
        })
    });
    g.bench_function("env_step_filter", |b| {
        let mut env = EdaEnv::new(d.frame.clone(), EnvConfig::default());
        env.reset();
        b.iter(|| {
            if env.done() {
                env.reset();
            }
            black_box(
                env.step(&EdaAction::Filter {
                    attr: 3,
                    op: 0,
                    bin: 9,
                })
                .step,
            )
        })
    });
    g.bench_function("frequency_binning", |b| {
        let col = d.frame.column("info").unwrap();
        b.iter(|| black_box(FrequencyBins::build(col, 10).n_bins()))
    });
    g.bench_function("observation_encode", |b| {
        let mut env = EdaEnv::new(d.frame.clone(), EnvConfig::default());
        env.reset();
        b.iter(|| black_box(env.observation().len()))
    });
    g.finish();
}

fn bench_reward(c: &mut Criterion) {
    let d = cyber2();
    let mut env = EdaEnv::new(d.frame.clone(), EnvConfig::default());
    let mut reward = CompoundReward::new(CoherencyConfig::with_focal_attrs(d.focal_attrs()));
    reward.fit(&mut env, 200, 0);
    let mut rng = StdRng::seed_from_u64(5);
    let mut g = c.benchmark_group("reward");
    g.bench_function("compound_score_per_step", |b| {
        env.reset();
        b.iter(|| {
            if env.done() {
                env.reset();
            }
            let action = random_action(&env, &mut rng);
            let op = env.resolve(&action);
            let preview = env.preview(&op);
            let score = {
                let info = env.step_info(&preview);
                reward.score(&info).total
            };
            env.commit(preview);
            black_box(score)
        })
    });
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let d = cyber2();
    let golds: Vec<Notebook> = d
        .gold_standards
        .iter()
        .map(|gold| Notebook::replay(&d.spec.name, &d.frame, gold))
        .collect();
    let gen = golds[0].clone();
    let gen_views = gen.views();
    let gold_views: Vec<Vec<String>> = golds.iter().map(|g| g.views()).collect();
    let mut g = c.benchmark_group("aeda_metrics");
    g.bench_function("precision", |b| {
        b.iter(|| black_box(precision(&gen_views, &gold_views)))
    });
    g.bench_function("t_bleu_3", |b| {
        b.iter(|| black_box(t_bleu(&gen_views, &gold_views, 3)))
    });
    g.bench_function("eda_sim", |b| b.iter(|| black_box(eda_sim(&gen, &golds))));
    g.finish();
}

criterion_group!(
    benches,
    bench_dataframe,
    bench_env,
    bench_reward,
    bench_metrics
);
criterion_main!(benches);
