//! Criterion benchmarks of the learning stack: policy sampling, policy
//! evaluation, and one full PPO update — the per-step costs behind the
//! Figure 5 wall-clock comparison.

use atena_data::cyber2;
use atena_env::{EdaEnv, EnvConfig};
use atena_nn::{Graph, Tensor};
use atena_rl::{
    ActionChoice, FlatPolicy, Policy, PpoConfig, PpoLearner, RolloutBuffer, RolloutStep,
    TwofoldConfig, TwofoldPolicy,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (EdaEnv, TwofoldPolicy, FlatPolicy) {
    let d = cyber2();
    let env = EdaEnv::new(d.frame.clone(), EnvConfig::default());
    let mut rng = StdRng::seed_from_u64(0);
    let twofold = TwofoldPolicy::new(
        env.observation_dim(),
        env.action_space().head_sizes(),
        TwofoldConfig::default(),
        &mut rng,
    );
    let flat = FlatPolicy::new(
        env.observation_dim(),
        env.action_space().flat_size_binned(),
        [128, 128],
        &mut rng,
    );
    (env, twofold, flat)
}

fn bench_policies(c: &mut Criterion) {
    let (env, twofold, flat) = setup();
    let obs = vec![0.2f32; env.observation_dim()];
    let mut rng = StdRng::seed_from_u64(1);
    let mut g = c.benchmark_group("policy");
    g.bench_function("twofold_act", |b| {
        b.iter(|| black_box(twofold.act(&obs, 1.0, &mut rng).log_prob))
    });
    g.bench_function("flat_act", |b| {
        b.iter(|| black_box(flat.act(&obs, 1.0, &mut rng).log_prob))
    });

    // Batch evaluation (the PPO inner loop).
    let batch = 64usize;
    let obs_t = Tensor::from_vec(
        batch,
        env.observation_dim(),
        (0..batch * env.observation_dim())
            .map(|i| (i as f32 * 0.01).sin())
            .collect(),
    );
    let choices: Vec<ActionChoice> = (0..batch)
        .map(|r| twofold.act(obs_t.row(r), 1.0, &mut rng).choice)
        .collect();
    g.bench_function("twofold_evaluate_batch64", |b| {
        b.iter(|| {
            let mut graph = Graph::new();
            let eval = twofold.evaluate(&mut graph, &obs_t, &choices);
            black_box(graph.value(eval.log_prob).get(0, 0))
        })
    });
    let flat_choices: Vec<ActionChoice> = (0..batch)
        .map(|r| flat.act(obs_t.row(r), 1.0, &mut rng).choice)
        .collect();
    g.bench_function("flat_evaluate_batch64", |b| {
        b.iter(|| {
            let mut graph = Graph::new();
            let eval = flat.evaluate(&mut graph, &obs_t, &flat_choices);
            black_box(graph.value(eval.log_prob).get(0, 0))
        })
    });
    g.finish();
}

fn bench_ppo_update(c: &mut Criterion) {
    let (env, twofold, _) = setup();
    let mut rng = StdRng::seed_from_u64(2);
    let obs_dim = env.observation_dim();
    let mut buffer = RolloutBuffer::new();
    for i in 0..96 {
        let obs = vec![(i as f32 * 0.03).cos(); obs_dim];
        let step = twofold.act(&obs, 1.0, &mut rng);
        buffer.push(RolloutStep {
            obs,
            choice: step.choice,
            log_prob: step.log_prob,
            value: step.value,
            reward: (i % 7) as f32 * 0.1,
            done: i % 12 == 11,
        });
    }
    let mut g = c.benchmark_group("ppo");
    g.sample_size(20);
    g.bench_function("update_96_steps", |b| {
        let mut learner = PpoLearner::new(
            &twofold,
            PpoConfig {
                epochs: 2,
                minibatch: 32,
                ..Default::default()
            },
        );
        b.iter(|| {
            black_box(learner.update(&twofold, &buffer, &mut rng).policy_loss);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_policies, bench_ppo_update);
criterion_main!(benches);
