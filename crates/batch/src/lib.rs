//! # atena-batch
//!
//! The batched-inference subsystem. Every lane in training and every
//! concurrent decode in the server evaluates the same small actor-critic
//! MLP over one observation at a time; the hot path is therefore dominated
//! by many tiny matmuls plus their per-call overhead (graph allocation,
//! weight snapshots). This crate turns N single-row forwards into one
//! `[B, obs_dim]` forward two ways:
//!
//! * [`BatchPlanner`] — a synchronous gather/scatter plan for callers that
//!   already hold all their observations (lane-batched rollouts): rows are
//!   packed in a fixed order into `max_batch`-sized chunks, the batched
//!   forward runs once per chunk, and per-row outputs are handed back in
//!   exactly the input order.
//! * [`MicroBatcher`] — a concurrent microbatch queue for callers that
//!   arrive independently (server decode steps): the first submitter opens
//!   a batch and arms a flush window, later submitters join until the batch
//!   is full (flush) or the window elapses (flush). Whichever thread closes
//!   the batch runs the forward once and publishes per-row results.
//!
//! Batching here is **execution-only** under the determinism contract: the
//! kernels in `atena-nn` guarantee that row `i` of a batched forward is
//! bit-identical to a one-row forward of the same observation, and both
//! the planner and the queue key every result to the submitting row — so
//! transcripts, checkpoints, and HTTP responses cannot depend on batch
//! size or on which requests happened to coalesce.
//!
//! Telemetry (per flush): `batch.occupancy` and `batch.queue_wait_us`
//! histograms, `batch.flush.full` / `batch.flush.timeout` counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use atena_nn::Tensor;
use atena_telemetry::MetricsRegistry;
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Microbatch queue tunables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicrobatchConfig {
    /// Rows that trigger an immediate (full) flush. Values ≤ 1 mean every
    /// submission flushes alone — batching effectively off.
    pub max_batch: usize,
    /// How long the first row of a batch waits for company before a
    /// timeout flush.
    pub window: Duration,
}

impl Default for MicrobatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            window: Duration::from_micros(200),
        }
    }
}

/// Pack per-source observation rows into one `[B, obs_dim]` tensor.
///
/// # Panics
/// Panics if any row's length differs from `obs_dim`.
fn gather(rows: &[Vec<f32>], obs_dim: usize) -> Tensor {
    let mut data = Vec::with_capacity(rows.len() * obs_dim);
    for row in rows {
        assert_eq!(row.len(), obs_dim, "observation width mismatch in batch");
        data.extend_from_slice(row);
    }
    Tensor::from_vec(rows.len(), obs_dim, data)
}

/// Synchronous gather → batched forward → scatter, in fixed input order.
///
/// The planner owns no model: callers pass the batched forward as a
/// closure mapping `[B, obs_dim]` to one output per row, which keeps the
/// crate usable for any per-row result type (policy rows, logits, values).
#[derive(Debug, Clone, Copy)]
pub struct BatchPlanner {
    obs_dim: usize,
    max_batch: usize,
}

impl BatchPlanner {
    /// A planner for `obs_dim`-wide observations flushing at most
    /// `max_batch` rows per forward (`0` is treated as `1`).
    pub fn new(obs_dim: usize, max_batch: usize) -> Self {
        Self {
            obs_dim,
            max_batch: max_batch.max(1),
        }
    }

    /// Observation width.
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// Maximum rows per batched forward.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Gather `rows` into ≤ `max_batch`-row chunks, run `forward` once per
    /// chunk, and return one output per input row **in input order**. The
    /// chunk boundaries never reorder rows, so output `i` always belongs
    /// to `rows[i]`.
    ///
    /// # Panics
    /// Panics if a row's width differs from `obs_dim` or `forward` returns
    /// a different number of outputs than its chunk has rows.
    pub fn run<R>(&self, rows: &[Vec<f32>], mut forward: impl FnMut(&Tensor) -> Vec<R>) -> Vec<R> {
        let mut out = Vec::with_capacity(rows.len());
        for chunk in rows.chunks(self.max_batch) {
            let batch = gather(chunk, self.obs_dim);
            let results = forward(&batch);
            assert_eq!(
                results.len(),
                chunk.len(),
                "batched forward returned {} outputs for {} rows",
                results.len(),
                chunk.len()
            );
            out.extend(results);
        }
        out
    }
}

/// Returned to waiters whose batch died before results were published:
/// the flushing thread panicked mid-forward (or mid-publish), so their
/// slots will never be filled. The queue itself recovers — the dead cell
/// was already detached from `open`, and the next submission opens a
/// fresh batch — so one poisoned flush costs its co-batched requests one
/// typed error each, never a stalled worker or a wedged queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAborted;

impl std::fmt::Display for BatchAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "microbatch aborted: the flushing peer died mid-flush")
    }
}

impl std::error::Error for BatchAborted {}

/// One in-flight microbatch: rows joined so far and, once flushed, the
/// per-row results for waiters to collect.
struct CellState<R> {
    rows: Vec<Vec<f32>>,
    enqueued: Vec<Instant>,
    /// Set by the thread that flushes; once true no new rows may join.
    closed: bool,
    /// Set when the flusher unwound before publishing; waiters error out
    /// instead of blocking forever.
    aborted: bool,
    /// Published after the batched forward; `None` slots were taken.
    results: Option<Vec<Option<R>>>,
}

struct BatchCell<R> {
    state: Mutex<CellState<R>>,
    cond: Condvar,
}

/// A leader/follower microbatch queue.
///
/// The first thread to submit opens a batch and waits up to
/// [`MicrobatchConfig::window`]; followers join the open batch. The batch
/// is flushed by the follower that fills it (`batch.flush.full`) or by
/// the leader's timer (`batch.flush.timeout`); the flushing thread runs
/// the forward once outside all locks and wakes the others.
///
/// Lock order is always `open` → `cell.state`, never the reverse.
///
/// Lock poisoning is recovered, not propagated: every guard under these
/// locks is a plain value snapshot that is valid wherever a writer
/// panicked, and pooled workers sharing a batcher must not turn one
/// panicked peer into a cascade of poisoned-lock panics.
pub struct MicroBatcher<R> {
    open: Mutex<Option<Arc<BatchCell<R>>>>,
    forward: Box<dyn Fn(&Tensor) -> Vec<R> + Send + Sync>,
    config: MicrobatchConfig,
    obs_dim: usize,
    telemetry: RwLock<Arc<MetricsRegistry>>,
}

impl<R: Send> MicroBatcher<R> {
    /// Build a queue over a batched forward mapping `[B, obs_dim]` to one
    /// output per row (row `i` of the output must correspond to row `i`
    /// of the input).
    pub fn new(
        obs_dim: usize,
        config: MicrobatchConfig,
        forward: impl Fn(&Tensor) -> Vec<R> + Send + Sync + 'static,
    ) -> Self {
        Self {
            open: Mutex::new(None),
            forward: Box::new(forward),
            config: MicrobatchConfig {
                max_batch: config.max_batch.max(1),
                window: config.window,
            },
            obs_dim,
            telemetry: RwLock::new(atena_telemetry::global_arc()),
        }
    }

    /// Point batch metrics at an explicit registry (servers route them to
    /// their per-instance registry; tests isolate themselves).
    pub fn reroute_telemetry(&self, registry: &Arc<MetricsRegistry>) {
        *self
            .telemetry
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Arc::clone(registry);
    }

    /// The configured flush policy.
    pub fn config(&self) -> MicrobatchConfig {
        self.config
    }

    /// Submit one observation row and block until its result is ready.
    /// The result is keyed to this row's slot in the batch, so what comes
    /// back is bit-identical to running the forward on this row alone.
    ///
    /// Returns [`BatchAborted`] when the peer that was flushing this row's
    /// batch panicked before publishing results; the queue itself stays
    /// healthy and the next submission opens a fresh batch.
    ///
    /// # Panics
    /// Panics if `row.len() != obs_dim`.
    pub fn submit(&self, row: Vec<f32>) -> Result<R, BatchAborted> {
        assert_eq!(row.len(), self.obs_dim, "observation width mismatch");
        let enqueued = Instant::now();
        if self.config.max_batch <= 1 {
            // Every batch is full at one row: skip the queue entirely so a
            // lone submitter never sits out the flush window.
            let cell = BatchCell {
                state: Mutex::new(CellState {
                    rows: Vec::new(),
                    enqueued: Vec::new(),
                    closed: true,
                    aborted: false,
                    results: None,
                }),
                cond: Condvar::new(),
            };
            return Ok(self.flush(&cell, vec![row], vec![enqueued], 0, true));
        }
        let mut open = self.open.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(cell) = open.clone() {
            // Join the open batch as a follower.
            let mut st = cell.state.lock().unwrap_or_else(PoisonError::into_inner);
            let idx = st.rows.len();
            st.rows.push(row);
            st.enqueued.push(enqueued);
            if st.rows.len() >= self.config.max_batch {
                // We filled it: close, detach, flush.
                st.closed = true;
                *open = None;
                drop(open);
                let rows = std::mem::take(&mut st.rows);
                let waits = std::mem::take(&mut st.enqueued);
                drop(st);
                // The leader may be in its timed wait; let it move to the
                // results wait promptly.
                cell.cond.notify_all();
                return Ok(self.flush(&cell, rows, waits, idx, true));
            }
            drop(open);
            return Self::await_result(&cell, st, idx);
        }
        // Leader: open a fresh batch and arm the window timer.
        let cell = Arc::new(BatchCell {
            state: Mutex::new(CellState {
                rows: vec![row],
                enqueued: vec![enqueued],
                closed: false,
                aborted: false,
                results: None,
            }),
            cond: Condvar::new(),
        });
        *open = Some(Arc::clone(&cell));
        drop(open);

        let deadline = enqueued + self.config.window;
        let mut st = cell.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if st.closed {
                // A follower filled the batch and is flushing it.
                return Self::await_result(&cell, st, 0);
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            st = cell
                .cond
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
        // Window elapsed: detach from `open` (respecting open → cell lock
        // order) and flush whatever joined.
        drop(st);
        let mut open = self.open.lock().unwrap_or_else(PoisonError::into_inner);
        let st = cell.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.closed {
            // Lost the race to a follower that filled the batch just now.
            drop(open);
            return Self::await_result(&cell, st, 0);
        }
        let mut st = st;
        st.closed = true;
        if open.as_ref().is_some_and(|c| Arc::ptr_eq(c, &cell)) {
            *open = None;
        }
        drop(open);
        let rows = std::mem::take(&mut st.rows);
        let waits = std::mem::take(&mut st.enqueued);
        drop(st);
        Ok(self.flush(&cell, rows, waits, 0, false))
    }

    /// Run the batched forward outside all locks, publish per-row results,
    /// wake the waiters, and return the flusher's own result.
    ///
    /// The flush is unwind-safe for its waiters: if the forward (or any
    /// step before results are published) panics, a drop guard marks the
    /// cell aborted and wakes every waiter, which then returns
    /// [`BatchAborted`] from [`MicroBatcher::submit`] instead of blocking
    /// forever on results that will never arrive. The cell was already
    /// detached from `open` before `flush` is called, so the queue itself
    /// is never wedged by a dead flusher.
    fn flush(
        &self,
        cell: &BatchCell<R>,
        rows: Vec<Vec<f32>>,
        waits: Vec<Instant>,
        my_idx: usize,
        full: bool,
    ) -> R {
        /// Wakes waiters with an abort verdict if the flush unwinds before
        /// results are published; disarmed on the success path.
        struct AbortOnUnwind<'a, R> {
            cell: &'a BatchCell<R>,
            telemetry: &'a RwLock<Arc<MetricsRegistry>>,
            armed: bool,
        }
        impl<R> Drop for AbortOnUnwind<'_, R> {
            fn drop(&mut self) {
                if !self.armed {
                    return;
                }
                let mut st = self
                    .cell
                    .state
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                st.aborted = true;
                drop(st);
                self.cell.cond.notify_all();
                self.telemetry
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .counter("batch.flush.aborted")
                    .inc();
            }
        }
        let mut guard = AbortOnUnwind {
            cell,
            telemetry: &self.telemetry,
            armed: true,
        };
        let flushed = Instant::now();
        {
            let t = self
                .telemetry
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            t.counter(if full {
                "batch.flush.full"
            } else {
                "batch.flush.timeout"
            })
            .inc();
            t.histogram("batch.occupancy").record(rows.len() as f64);
            let wait_us = t.histogram("batch.queue_wait_us");
            for w in &waits {
                wait_us.record(flushed.duration_since(*w).as_micros() as f64);
            }
        }
        let batch = gather(&rows, self.obs_dim);
        let mut results: Vec<Option<R>> = (self.forward)(&batch).into_iter().map(Some).collect();
        assert_eq!(
            results.len(),
            rows.len(),
            "batched forward returned {} outputs for {} rows",
            results.len(),
            rows.len()
        );
        // atena-lint: allow(panic-path) — gather() placed exactly one result per joined row
        let mine = results[my_idx].take().expect("own result present");
        let mut st = cell.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.results = Some(results);
        guard.armed = false;
        drop(st);
        cell.cond.notify_all();
        mine
    }

    /// Block on the cell until results are published (or the flush is
    /// aborted), then take slot `idx`.
    fn await_result(
        cell: &BatchCell<R>,
        mut st: std::sync::MutexGuard<'_, CellState<R>>,
        idx: usize,
    ) -> Result<R, BatchAborted> {
        loop {
            if st.aborted {
                return Err(BatchAborted);
            }
            if let Some(results) = st.results.as_mut() {
                // atena-lint: allow(panic-path) — each member owns a distinct slot, taken once
                return Ok(results[idx].take().expect("result taken exactly once"));
            }
            st = cell.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl<R> std::fmt::Debug for MicroBatcher<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MicroBatcher")
            .field("obs_dim", &self.obs_dim)
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    /// Batched "model": each row maps to (row index's sum, first element).
    fn row_sums(batch: &Tensor) -> Vec<f32> {
        (0..batch.rows())
            .map(|r| batch.row(r).iter().sum::<f32>())
            .collect()
    }

    #[test]
    fn planner_preserves_input_order_across_chunks() {
        let planner = BatchPlanner::new(2, 4);
        let rows: Vec<Vec<f32>> = (0..11).map(|i| vec![i as f32, 1.0]).collect();
        let mut chunk_sizes = Vec::new();
        let out = planner.run(&rows, |batch| {
            chunk_sizes.push(batch.rows());
            row_sums(batch)
        });
        assert_eq!(chunk_sizes, vec![4, 4, 3]);
        let expect: Vec<f32> = (0..11).map(|i| i as f32 + 1.0).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn planner_batch_zero_means_one() {
        let planner = BatchPlanner::new(1, 0);
        assert_eq!(planner.max_batch(), 1);
        let out = planner.run(&[vec![2.0], vec![3.0]], row_sums);
        assert_eq!(out, vec![2.0, 3.0]);
    }

    #[test]
    fn full_flush_returns_each_submitter_its_own_row() {
        let telemetry = Arc::new(MetricsRegistry::new());
        let b = Arc::new(MicroBatcher::new(
            1,
            MicrobatchConfig {
                max_batch: 4,
                // Generous window: the test must coalesce via the barrier,
                // not via timing luck.
                window: Duration::from_secs(5),
            },
            row_sums,
        ));
        b.reroute_telemetry(&telemetry);
        let barrier = Arc::new(Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let b = Arc::clone(&b);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    (i, b.submit(vec![i as f32]).unwrap())
                })
            })
            .collect();
        for h in handles {
            let (i, got) = h.join().unwrap();
            assert_eq!(got, i as f32, "submitter {i} got someone else's result");
        }
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("batch.flush.full"), Some(1));
        assert_eq!(snap.counter("batch.flush.timeout"), None);
        let occ = snap
            .histogram("batch.occupancy")
            .expect("occupancy recorded");
        assert_eq!(occ.count, 1);
        assert_eq!(occ.max, 4.0);
        assert!(
            snap.histogram("batch.queue_wait_us")
                .is_some_and(|h| h.count == 4),
            "one queue-wait sample per row"
        );
    }

    #[test]
    fn lone_submission_flushes_on_timeout() {
        let telemetry = Arc::new(MetricsRegistry::new());
        let b = MicroBatcher::new(
            2,
            MicrobatchConfig {
                max_batch: 8,
                window: Duration::from_micros(50),
            },
            row_sums,
        );
        b.reroute_telemetry(&telemetry);
        assert_eq!(b.submit(vec![1.5, 2.5]).unwrap(), 4.0);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("batch.flush.timeout"), Some(1));
        assert_eq!(snap.histogram("batch.occupancy").map(|h| h.max), Some(1.0));
    }

    #[test]
    fn max_batch_one_never_waits() {
        let b = MicroBatcher::new(
            1,
            MicrobatchConfig {
                max_batch: 1,
                window: Duration::from_secs(5),
            },
            row_sums,
        );
        let start = Instant::now();
        assert_eq!(b.submit(vec![7.0]).unwrap(), 7.0);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "max_batch 1 must flush immediately, not wait out the window"
        );
    }

    #[test]
    fn flusher_panic_aborts_waiters_and_queue_recovers() {
        let telemetry = Arc::new(MetricsRegistry::new());
        // The forward panics whenever the batch contains a poisoned row,
        // exactly as a latent engine bug triggered by one hostile request
        // would: the flushing thread unwinds mid-flush.
        let b = Arc::new(MicroBatcher::new(
            1,
            MicrobatchConfig {
                max_batch: 4,
                window: Duration::from_secs(5),
            },
            |batch: &Tensor| {
                if (0..batch.rows()).any(|r| batch.row(r)[0] < 0.0) {
                    panic!("injected flush fault");
                }
                row_sums(batch)
            },
        ));
        b.reroute_telemetry(&telemetry);
        let barrier = Arc::new(Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let b = Arc::clone(&b);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    // Every row poisoned: whoever flushes, the batch dies.
                    b.submit(vec![-1.0 - i as f32])
                })
            })
            .collect();
        let mut panicked = 0usize;
        let mut aborted = 0usize;
        for h in handles {
            match h.join() {
                Err(_) => panicked += 1,               // the flusher itself
                Ok(Err(BatchAborted)) => aborted += 1, // its co-batched peers
                Ok(Ok(v)) => panic!("no result should surface, got {v}"),
            }
        }
        assert_eq!(panicked, 1, "exactly one thread flushed and unwound");
        assert_eq!(aborted, 3, "every waiter got a typed abort, none stalled");
        assert_eq!(
            telemetry.snapshot().counter("batch.flush.aborted"),
            Some(1),
            "abort counted once"
        );
        // The queue is not wedged: healthy submissions keep working.
        for i in 0..4 {
            assert_eq!(b.submit(vec![i as f32]).unwrap(), i as f32);
        }
    }

    #[test]
    fn sequential_submissions_reuse_the_queue() {
        let b = MicroBatcher::new(
            1,
            MicrobatchConfig {
                max_batch: 1,
                window: Duration::from_micros(10),
            },
            row_sums,
        );
        for i in 0..16 {
            assert_eq!(b.submit(vec![i as f32]).unwrap(), i as f32);
        }
    }
}
