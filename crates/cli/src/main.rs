//! The `atena` command-line binary. All logic lives in the library crate
//! (`atena_cli`) so it is unit-testable; this is only the process shell.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match atena_cli::parse(&args).and_then(atena_cli::run) {
        Ok(stdout) => {
            if !stdout.is_empty() {
                println!("{stdout}");
            }
        }
        Err(e) => {
            atena_telemetry::error!("{e}");
            std::process::exit(2);
        }
    }
}
