//! # atena-cli
//!
//! Argument parsing and command dispatch for the `atena` binary:
//!
//! ```text
//! atena generate <data.csv> [--focal col1,col2] [--steps N] [--episode-len N]
//!                           [--strategy atena|atn-io|ots-drl|ots-drl-b|greedy-cr|greedy-io]
//!                           [--seed N] [--out notebook.md] [--json notebook.json]
//!                           [--log-level L] [--metrics-out metrics.jsonl]
//! atena demo <dataset-id>   [same options]   # cyber1..cyber4, flights1..flights4
//! atena datasets                              # list the built-in datasets
//! atena train <dataset-id>  [--workers N] [--out <ckpt.json>] [--steps N] ...
//! atena checkpoint save <dataset-id> --out <ckpt.json> [--steps N] ...
//! atena checkpoint load <ckpt.json>           # validate + describe a checkpoint
//! atena serve --checkpoint <ckpt.json> [--addr A] [--workers N] [--cache-size N]
//!                           [--slow-ms N] [--timeout-ms N] [--trace-out traces.jsonl]
//! atena metrics summarize <metrics.jsonl> [--format text|json]
//! atena trace summarize <traces.jsonl>        # flame table of a span stream
//! atena help
//! ```
//!
//! Parsing is hand-rolled (the option surface is tiny) and fully unit
//! tested; the binary is a thin `main` over [`run`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use atena_core::{Atena, AtenaConfig, Strategy};
use atena_dataframe::DataFrame;
use std::fmt;

/// CLI errors, rendered to stderr by the binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Bad usage; the message explains what was wrong.
    Usage(String),
    /// Runtime failure (I/O, parse, unknown dataset).
    Runtime(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}\n\n{USAGE}"),
            CliError::Runtime(m) => write!(f, "error: {m}"),
        }
    }
}

/// The usage banner.
pub const USAGE: &str = "\
atena — auto-generate EDA notebooks (SIGMOD'20 ATENA)

USAGE:
  atena generate <data.csv> [OPTIONS]   generate a notebook for a CSV file
  atena demo <dataset-id>   [OPTIONS]   run on a built-in experimental dataset
  atena datasets                        list built-in datasets
  atena datasets inspect <file.csv>...  print upload identity (id, schema)
  atena export <dataset-id> <file.csv>  write a built-in dataset as CSV
  atena train <dataset-id>  [OPTIONS]   train a policy on a built-in dataset
                                        (pass --out <ckpt.json> to save it)
  atena checkpoint save <dataset-id> --out <ckpt.json> [OPTIONS]
                                        train a policy, save it as a checkpoint
  atena checkpoint load <ckpt.json>     validate + describe a saved checkpoint
  atena serve --checkpoint <ckpt.json>  serve notebooks over HTTP
  atena metrics summarize <m.jsonl>     aggregate a telemetry JSONL file
  atena trace summarize <t.jsonl>       flame table of a trace JSONL file
  atena help                            show this help

SERVE OPTIONS:
  --addr <A>          bind address                 [default: 127.0.0.1:8080]
  --workers <N>       worker threads               [default: 4]
  --cache-size <N>    LRU response-cache entries   [default: 256]
  --slow-ms <N>       slow-request WARN threshold  [default: 500]
  --timeout-ms <N>    per-request I/O deadline (read budget and write
                      budget each; bounds slow-loris)  [default: 10000]
  --trace-out <f>     record request span trees to <f> as JSONL
  --registry-budget-mb <N>   upload-registry byte budget   [default: 256]
  --upload-max-mb <N>        per-upload CSV size cap       [default: 8]
  --tenant-max-inflight <N>  per-tenant in-flight cap      [default: 8]
  --tenant-quota-mb <N>      per-tenant resident quota     [default: 64]
  --max-batch <N>     decode steps coalesced per forward; responses are
                      bit-identical at any value   [default: 1 (off)]
  --batch-window-us <N>  wait for batch company, microseconds  [default: 200]

METRICS SUMMARIZE OPTIONS:
  --format <F>        text | json                  [default: text]

OPTIONS:
  --focal <c1,c2>     focal attributes (columns of particular interest)
  --steps <N>         training steps                     [default: 8000]
  --episode-len <N>   operations per notebook            [default: 12]
  --strategy <S>      atena | atn-io | ots-drl | ots-drl-b |
                      greedy-cr | greedy-io              [default: atena]
  --seed <N>          random seed                        [default: 0]
  --workers <N>       rollout threads for training; changes speed, never
                      results (DESIGN.md §4h)   [default: available parallelism]
  --batch-lanes <N>   lanes stepped per batched policy forward; changes
                      speed, never results (DESIGN.md §4l)  [default: 0 (off)]
  --out <file.md>     write the notebook as Markdown (default: stdout)
  --json <file.json>  also write the notebook summary as JSON
  --log-level <L>     error | warn | info | debug        [default: $ATENA_LOG or info]
  --metrics-out <f>   stream telemetry events to <f> as JSONL
  --trace-out <f>     record spans (training iterations) to <f> as JSONL
";

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate from a CSV path.
    Generate {
        /// CSV path.
        path: String,
        /// Common options.
        opts: GenerateOpts,
    },
    /// Generate for a built-in dataset.
    Demo {
        /// Dataset id (`cyber1` … `flights4`).
        id: String,
        /// Common options.
        opts: GenerateOpts,
    },
    /// List built-in datasets.
    Datasets,
    /// Export a built-in dataset as CSV.
    Export {
        /// Dataset id.
        id: String,
        /// Output path.
        path: String,
    },
    /// Train a policy on a built-in dataset (optionally saving it).
    Train {
        /// Dataset id (`cyber1` … `flights4`).
        id: String,
        /// Training options; `opts.out` (when set) is the checkpoint path.
        opts: GenerateOpts,
    },
    /// Aggregate a telemetry JSONL file into a per-metric table.
    MetricsSummarize {
        /// Path of the JSONL file written via `--metrics-out`.
        path: String,
        /// Output format (`--format text|json`).
        format: SummaryFormat,
    },
    /// Aggregate a trace JSONL file into a per-span-name flame table.
    TraceSummarize {
        /// Path of the JSONL file written via `--trace-out`.
        path: String,
    },
    /// Train a policy on a built-in dataset and save it as a checkpoint.
    CheckpointSave {
        /// Dataset id (`cyber1` … `flights4`).
        id: String,
        /// Checkpoint output path (from `--out`).
        out: String,
        /// Training options (focal/steps/episode-len/strategy/seed).
        opts: GenerateOpts,
    },
    /// Load, validate, and describe a saved checkpoint.
    CheckpointLoad {
        /// Checkpoint path.
        path: String,
    },
    /// Serve notebook generation over HTTP from a saved checkpoint.
    Serve {
        /// Checkpoint path.
        checkpoint: String,
        /// Bind address.
        addr: String,
        /// Worker threads.
        workers: usize,
        /// LRU response-cache capacity.
        cache_size: usize,
        /// Slow-request WARN threshold in milliseconds.
        slow_ms: u64,
        /// Per-request I/O deadline in milliseconds: total wall-clock
        /// budget for reading one request and (separately) writing its
        /// response, regardless of how the peer paces its bytes.
        timeout_ms: u64,
        /// Trace JSONL output path (enables span recording when set).
        trace_out: Option<String>,
        /// Dataset-registry byte budget for uploads, in MiB.
        registry_budget_mb: usize,
        /// Per-upload CSV size cap, in MiB.
        upload_max_mb: usize,
        /// Per-tenant in-flight request cap for mutating routes.
        tenant_max_inflight: usize,
        /// Per-tenant resident-byte quota, in MiB.
        tenant_quota_mb: usize,
        /// Rows per microbatched decode forward (1 = batching off).
        max_batch: usize,
        /// Microbatch window in microseconds.
        batch_window_us: u64,
    },
    /// Offline registry inspection: parse CSV files exactly as an upload
    /// would and print their dataset identity and schema.
    DatasetsInspect {
        /// CSV paths to inspect.
        paths: Vec<String>,
    },
    /// Print usage.
    Help,
}

/// Output format for `metrics summarize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SummaryFormat {
    /// Human-readable aligned table (the default).
    #[default]
    Text,
    /// One machine-readable JSON object.
    Json,
}

impl SummaryFormat {
    /// Parse a `--format` value.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Ok(SummaryFormat::Text),
            "json" => Ok(SummaryFormat::Json),
            other => Err(CliError::Usage(format!(
                "unknown format {other:?} (expected text|json)"
            ))),
        }
    }
}

/// Options shared by `generate` and `demo`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateOpts {
    /// Focal attributes.
    pub focal: Vec<String>,
    /// Training steps.
    pub steps: usize,
    /// Episode length.
    pub episode_len: usize,
    /// Strategy.
    pub strategy: Strategy,
    /// Seed.
    pub seed: u64,
    /// Rollout threads for training (`None` = available parallelism).
    /// Execution-only: never affects results.
    pub workers: Option<usize>,
    /// Rows per batched policy forward during rollouts (0 = per-lane
    /// serial forwards). Execution-only, like `workers`.
    pub batch_lanes: usize,
    /// Markdown output path (stdout when `None`).
    pub out: Option<String>,
    /// JSON output path.
    pub json: Option<String>,
    /// Log level override (`None` keeps `$ATENA_LOG` / the default).
    pub log_level: Option<atena_telemetry::Level>,
    /// Telemetry JSONL output path.
    pub metrics_out: Option<String>,
    /// Trace JSONL output path (enables span recording when set).
    pub trace_out: Option<String>,
}

impl Default for GenerateOpts {
    fn default() -> Self {
        Self {
            focal: Vec::new(),
            steps: 8_000,
            episode_len: 12,
            strategy: Strategy::Atena,
            seed: 0,
            workers: None,
            batch_lanes: 0,
            out: None,
            json: None,
            log_level: None,
            metrics_out: None,
            trace_out: None,
        }
    }
}

/// Parse a strategy name.
pub fn parse_strategy(s: &str) -> Result<Strategy, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "atena" => Ok(Strategy::Atena),
        "atn-io" | "atnio" => Ok(Strategy::AtnIo),
        "ots-drl" | "otsdrl" => Ok(Strategy::OtsDrl),
        "ots-drl-b" | "otsdrlb" => Ok(Strategy::OtsDrlB),
        "greedy-cr" | "greedycr" => Ok(Strategy::GreedyCr),
        "greedy-io" | "greedyio" => Ok(Strategy::GreedyIo),
        other => Err(CliError::Usage(format!("unknown strategy {other:?}"))),
    }
}

fn parse_opts(args: &[String]) -> Result<GenerateOpts, CliError> {
    let mut opts = GenerateOpts::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> Result<&String, CliError> {
            args.get(i + 1)
                .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))
        };
        match flag {
            "--focal" => {
                opts.focal = value(i)?.split(',').map(|s| s.trim().to_string()).collect();
                i += 2;
            }
            "--steps" => {
                opts.steps = value(i)?
                    .parse()
                    .map_err(|_| CliError::Usage("--steps expects an integer".into()))?;
                i += 2;
            }
            "--episode-len" => {
                opts.episode_len = value(i)?
                    .parse()
                    .map_err(|_| CliError::Usage("--episode-len expects an integer".into()))?;
                if opts.episode_len == 0 {
                    return Err(CliError::Usage("--episode-len must be positive".into()));
                }
                i += 2;
            }
            "--strategy" => {
                opts.strategy = parse_strategy(value(i)?)?;
                i += 2;
            }
            "--seed" => {
                opts.seed = value(i)?
                    .parse()
                    .map_err(|_| CliError::Usage("--seed expects an integer".into()))?;
                i += 2;
            }
            "--workers" => {
                opts.workers = Some(
                    value(i)?
                        .parse()
                        .map_err(|_| CliError::Usage("--workers expects an integer".into()))?,
                );
                i += 2;
            }
            "--batch-lanes" => {
                opts.batch_lanes = value(i)?
                    .parse()
                    .map_err(|_| CliError::Usage("--batch-lanes expects an integer".into()))?;
                i += 2;
            }
            "--out" => {
                opts.out = Some(value(i)?.clone());
                i += 2;
            }
            "--json" => {
                opts.json = Some(value(i)?.clone());
                i += 2;
            }
            "--log-level" => {
                let raw = value(i)?;
                opts.log_level = Some(atena_telemetry::Level::parse(raw).ok_or_else(|| {
                    CliError::Usage(format!(
                        "unknown log level {raw:?} (expected error|warn|info|debug)"
                    ))
                })?);
                i += 2;
            }
            "--metrics-out" => {
                opts.metrics_out = Some(value(i)?.clone());
                i += 2;
            }
            "--trace-out" => {
                opts.trace_out = Some(value(i)?.clone());
                i += 2;
            }
            other => return Err(CliError::Usage(format!("unknown option {other:?}"))),
        }
    }
    Ok(opts)
}

/// Parse a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("datasets") => match args.get(1).map(String::as_str) {
            None => Ok(Command::Datasets),
            Some("inspect") => {
                let paths: Vec<String> = args[2..].to_vec();
                if paths.is_empty() || paths.iter().any(|p| p.starts_with("--")) {
                    return Err(CliError::Usage(
                        "datasets inspect requires one or more CSV paths".into(),
                    ));
                }
                Ok(Command::DatasetsInspect { paths })
            }
            Some(other) => Err(CliError::Usage(format!(
                "datasets supports: (no args) | inspect <file.csv>...; got {other:?}"
            ))),
        },
        Some("export") => {
            let id = args
                .get(1)
                .ok_or_else(|| CliError::Usage("export requires a dataset id".into()))?
                .clone();
            let path = args
                .get(2)
                .ok_or_else(|| CliError::Usage("export requires an output path".into()))?
                .clone();
            Ok(Command::Export { id, path })
        }
        Some("generate") => {
            let path = args
                .get(1)
                .filter(|p| !p.starts_with("--"))
                .ok_or_else(|| CliError::Usage("generate requires a CSV path".into()))?
                .clone();
            Ok(Command::Generate {
                path,
                opts: parse_opts(&args[2..])?,
            })
        }
        Some("demo") => {
            let id = args
                .get(1)
                .filter(|p| !p.starts_with("--"))
                .ok_or_else(|| CliError::Usage("demo requires a dataset id".into()))?
                .clone();
            Ok(Command::Demo {
                id,
                opts: parse_opts(&args[2..])?,
            })
        }
        Some("train") => {
            let id = args
                .get(1)
                .filter(|p| !p.starts_with("--"))
                .ok_or_else(|| CliError::Usage("train requires a dataset id".into()))?
                .clone();
            let opts = parse_opts(&args[2..])?;
            if !opts.strategy.is_learned() {
                return Err(CliError::Usage(format!(
                    "strategy {} has no trainable policy",
                    opts.strategy.name()
                )));
            }
            Ok(Command::Train { id, opts })
        }
        Some("checkpoint") => match args.get(1).map(String::as_str) {
            Some("save") => {
                let id = args
                    .get(2)
                    .filter(|p| !p.starts_with("--"))
                    .ok_or_else(|| CliError::Usage("checkpoint save requires a dataset id".into()))?
                    .clone();
                let opts = parse_opts(&args[3..])?;
                let out = opts.out.clone().ok_or_else(|| {
                    CliError::Usage("checkpoint save requires --out <ckpt.json>".into())
                })?;
                if !opts.strategy.is_learned() {
                    return Err(CliError::Usage(format!(
                        "strategy {} has no trainable policy to checkpoint",
                        opts.strategy.name()
                    )));
                }
                Ok(Command::CheckpointSave { id, out, opts })
            }
            Some("load") => {
                let path = args
                    .get(2)
                    .ok_or_else(|| {
                        CliError::Usage("checkpoint load requires a checkpoint path".into())
                    })?
                    .clone();
                Ok(Command::CheckpointLoad { path })
            }
            _ => Err(CliError::Usage(
                "checkpoint supports: save <dataset-id> --out <ckpt.json> | load <ckpt.json>"
                    .into(),
            )),
        },
        Some("serve") => {
            let mut checkpoint = None;
            let mut addr = "127.0.0.1:8080".to_string();
            let mut workers = 4usize;
            let mut cache_size = 256usize;
            let mut slow_ms = 500u64;
            let mut timeout_ms = 10_000u64;
            let mut trace_out = None;
            let mut registry_budget_mb = 256usize;
            let mut upload_max_mb = 8usize;
            let mut tenant_max_inflight = 8usize;
            let mut tenant_quota_mb = 64usize;
            let mut max_batch = 1usize;
            let mut batch_window_us = 200u64;
            let rest = &args[1..];
            let mut i = 0;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = rest
                    .get(i + 1)
                    .ok_or_else(|| CliError::Usage(format!("{flag} requires a value")))?;
                let int = |name: &str| -> Result<usize, CliError> {
                    value
                        .parse()
                        .map_err(|_| CliError::Usage(format!("{name} expects an integer")))
                };
                match flag {
                    "--checkpoint" => checkpoint = Some(value.clone()),
                    "--addr" => addr = value.clone(),
                    "--workers" => workers = int("--workers")?,
                    "--cache-size" => cache_size = int("--cache-size")?,
                    "--slow-ms" => {
                        slow_ms = value
                            .parse()
                            .map_err(|_| CliError::Usage("--slow-ms expects an integer".into()))?;
                    }
                    "--timeout-ms" => {
                        timeout_ms = value.parse().ok().filter(|v| *v > 0).ok_or_else(|| {
                            CliError::Usage("--timeout-ms expects a positive integer".into())
                        })?;
                    }
                    "--trace-out" => trace_out = Some(value.clone()),
                    "--registry-budget-mb" => registry_budget_mb = int("--registry-budget-mb")?,
                    "--upload-max-mb" => upload_max_mb = int("--upload-max-mb")?,
                    "--tenant-max-inflight" => {
                        tenant_max_inflight = int("--tenant-max-inflight")?;
                    }
                    "--tenant-quota-mb" => tenant_quota_mb = int("--tenant-quota-mb")?,
                    "--max-batch" => {
                        max_batch = int("--max-batch")?;
                        if max_batch == 0 {
                            return Err(CliError::Usage("--max-batch must be positive".into()));
                        }
                    }
                    "--batch-window-us" => {
                        batch_window_us = value.parse().map_err(|_| {
                            CliError::Usage("--batch-window-us expects an integer".into())
                        })?;
                    }
                    other => return Err(CliError::Usage(format!("unknown option {other:?}"))),
                }
                i += 2;
            }
            let checkpoint = checkpoint
                .ok_or_else(|| CliError::Usage("serve requires --checkpoint <ckpt.json>".into()))?;
            Ok(Command::Serve {
                checkpoint,
                addr,
                workers,
                cache_size,
                slow_ms,
                timeout_ms,
                trace_out,
                registry_budget_mb,
                upload_max_mb,
                tenant_max_inflight,
                tenant_quota_mb,
                max_batch,
                batch_window_us,
            })
        }
        Some("metrics") => match args.get(1).map(String::as_str) {
            Some("summarize") => {
                let path = args
                    .get(2)
                    .filter(|p| !p.starts_with("--"))
                    .ok_or_else(|| {
                        CliError::Usage("metrics summarize requires a JSONL path".into())
                    })?
                    .clone();
                let mut format = SummaryFormat::Text;
                let rest = &args[3..];
                let mut i = 0;
                while i < rest.len() {
                    match rest[i].as_str() {
                        "--format" => {
                            let raw = rest.get(i + 1).ok_or_else(|| {
                                CliError::Usage("--format requires a value".into())
                            })?;
                            format = SummaryFormat::parse(raw)?;
                            i += 2;
                        }
                        other => return Err(CliError::Usage(format!("unknown option {other:?}"))),
                    }
                }
                Ok(Command::MetricsSummarize { path, format })
            }
            _ => Err(CliError::Usage(
                "metrics supports: summarize <file.jsonl> [--format text|json]".into(),
            )),
        },
        Some("trace") => match args.get(1).map(String::as_str) {
            Some("summarize") => {
                let path = args
                    .get(2)
                    .filter(|p| !p.starts_with("--"))
                    .ok_or_else(|| CliError::Usage("trace summarize requires a JSONL path".into()))?
                    .clone();
                Ok(Command::TraceSummarize { path })
            }
            _ => Err(CliError::Usage(
                "trace supports: summarize <file.jsonl>".into(),
            )),
        },
        Some(other) => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

fn config_for(opts: &GenerateOpts) -> AtenaConfig {
    let mut config = AtenaConfig {
        train_steps: opts.steps,
        ..AtenaConfig::default()
    };
    config.env.episode_len = opts.episode_len;
    config.env.seed = opts.seed;
    config.trainer.seed = opts.seed;
    // Thread count only — the determinism contract (DESIGN.md §4h)
    // guarantees results don't depend on it, so defaulting to whatever
    // the machine has is safe.
    config.trainer.n_workers = opts.workers.unwrap_or_else(atena_runtime::default_workers);
    // Also execution-only (DESIGN.md §4l): lane batching changes steps/sec,
    // never the transcript.
    config.trainer.batch_lanes = opts.batch_lanes;
    config
}

/// Apply `--log-level` / `--metrics-out` / `--trace-out` to the global
/// telemetry registry and tracer.
fn apply_telemetry_opts(opts: &GenerateOpts) -> Result<(), CliError> {
    if let Some(level) = opts.log_level {
        atena_telemetry::set_level(level);
    }
    if let Some(path) = &opts.metrics_out {
        atena_telemetry::global()
            .set_jsonl_sink(std::path::Path::new(path))
            .map_err(|e| CliError::Runtime(format!("cannot open {path}: {e}")))?;
        atena_telemetry::info!("streaming telemetry to {path}");
    }
    if let Some(path) = &opts.trace_out {
        set_trace_sink(path)?;
    }
    Ok(())
}

/// Point the global tracer at a JSONL file (this also enables recording:
/// tracing is off unless explicitly requested — DESIGN.md §4j).
fn set_trace_sink(path: &str) -> Result<(), CliError> {
    atena_telemetry::tracer()
        .set_jsonl_sink(std::path::Path::new(path))
        .map_err(|e| CliError::Runtime(format!("cannot open {path}: {e}")))?;
    atena_telemetry::info!("recording span traces to {path}");
    Ok(())
}

fn generate(name: &str, frame: DataFrame, opts: &GenerateOpts) -> Result<String, CliError> {
    apply_telemetry_opts(opts)?;
    atena_telemetry::info!(
        "strategy {}, {} steps, {}-op notebook ...",
        opts.strategy.name(),
        if opts.strategy.is_learned() {
            opts.steps
        } else {
            0
        },
        opts.episode_len
    );
    let result = Atena::new(name, frame)
        .with_focal_attrs(opts.focal.clone())
        .with_config(config_for(opts))
        .with_strategy(opts.strategy)
        .generate();
    atena_telemetry::info!("best episode reward: {:.3}", result.best_reward);
    atena_telemetry::global().flush();

    if let Some(json_path) = &opts.json {
        std::fs::write(json_path, result.notebook.to_json())
            .map_err(|e| CliError::Runtime(format!("cannot write {json_path}: {e}")))?;
        atena_telemetry::info!("JSON summary written to {json_path}");
    }
    let md = result.notebook.to_markdown();
    if let Some(out) = &opts.out {
        std::fs::write(out, &md)
            .map_err(|e| CliError::Runtime(format!("cannot write {out}: {e}")))?;
        atena_telemetry::info!("notebook written to {out}");
        Ok(String::new())
    } else {
        Ok(md)
    }
}

/// Per-metric aggregation of one JSONL telemetry stream.
#[derive(Debug, Clone, Default)]
struct MetricSummary {
    count: usize,
    sum: f64,
    min: f64,
    max: f64,
    last: f64,
}

impl MetricSummary {
    fn push(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.last = v;
    }
}

/// Aggregate a `--metrics-out` JSONL file into a per-`(name, kind)` table.
///
/// Rows are sorted alphabetically by metric name (then kind), so the output
/// is stable across runs and diffable in CI logs regardless of event order
/// in the stream.
///
/// Tolerant of real-world telemetry files: malformed lines (truncated tail
/// from a killed process, interleaved writes, non-event records) are skipped
/// and counted rather than aborting the whole summary. A file with zero
/// parseable event records, however, is an error — a pipeline asserting on
/// a summary should fail loudly when the stream it fed in was empty junk.
pub fn summarize_metrics(path: &str, format: SummaryFormat) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
    let mut stats: std::collections::BTreeMap<(String, String), MetricSummary> =
        std::collections::BTreeMap::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = serde_json::from_str::<serde_json::Value>(line)
            .ok()
            .and_then(|v| {
                Some((
                    v["kind"].as_str()?.to_string(),
                    v["name"].as_str()?.to_string(),
                    v["value"].as_f64()?,
                ))
            });
        match parsed {
            // Keyed (name, kind): the BTreeMap iterates name-major, which
            // is the sorted order the table prints in.
            Some((kind, name, value)) => stats.entry((name, kind)).or_default().push(value),
            None => skipped += 1,
        }
    }
    if stats.is_empty() {
        return Err(CliError::Runtime(format!(
            "{path}: no parseable event records ({skipped} malformed lines)"
        )));
    }
    match format {
        SummaryFormat::Json => {
            let mut out = format!("{{\"path\":{:?},\"skipped\":{skipped},\"metrics\":[", path);
            for (i, ((name, kind), s)) in stats.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":{name:?},\"kind\":{kind:?},\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"last\":{}}}",
                    s.count,
                    s.sum / s.count as f64,
                    s.min,
                    s.max,
                    s.last
                ));
            }
            out.push_str("]}\n");
            Ok(out)
        }
        SummaryFormat::Text => {
            let note = match skipped {
                0 => String::new(),
                1 => format!("({path}: 1 malformed line skipped)\n"),
                n => format!("({path}: {n} malformed lines skipped)\n"),
            };
            let mut out = format!(
                "{:<34} {:<10} {:>8} {:>12} {:>12} {:>12} {:>12}\n",
                "name", "kind", "count", "mean", "min", "max", "last"
            );
            for ((name, kind), s) in &stats {
                out.push_str(&format!(
                    "{:<34} {:<10} {:>8} {:>12.5} {:>12.5} {:>12.5} {:>12.5}\n",
                    name,
                    kind,
                    s.count,
                    s.sum / s.count as f64,
                    s.min,
                    s.max,
                    s.last
                ));
            }
            out.push_str(&note);
            Ok(out)
        }
    }
}

/// Per-span-name aggregation for [`summarize_trace`].
#[derive(Debug, Clone, Default)]
struct SpanSummary {
    durations: Vec<f64>,
    child_secs: f64,
}

impl SpanSummary {
    fn total(&self) -> f64 {
        self.durations.iter().sum()
    }
    /// Nearest-rank quantile over this name's durations.
    fn quantile(&mut self, q: f64) -> f64 {
        self.durations
            .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((self.durations.len() as f64 - 1.0) * q).round() as usize;
        self.durations[idx.min(self.durations.len() - 1)]
    }
}

/// Aggregate a `--trace-out` JSONL span stream into a flame table: one row
/// per span name with call count, total time, self time (total minus direct
/// children), and p50/p95/p99 durations, sorted by total time descending.
///
/// Self time is clamped at zero: spans recorded from parallel workers (e.g.
/// `rollout.worker` under `rollout.collect`) legitimately sum to more than
/// their parent's wall time.
///
/// Malformed lines are skipped like [`summarize_metrics`]; zero parseable
/// spans is an error.
pub fn summarize_trace(path: &str) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
    // (trace, span) → (name, duration): unique per stream, used to resolve
    // each span's parent for the self-time subtraction.
    let mut spans: std::collections::HashMap<(String, String), (String, f64)> =
        std::collections::HashMap::new();
    // (trace, parent span) → sum of direct children's durations.
    let mut child_secs: std::collections::HashMap<(String, String), f64> =
        std::collections::HashMap::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = serde_json::from_str::<serde_json::Value>(line)
            .ok()
            .and_then(|v| {
                Some((
                    v["trace"].as_str()?.to_string(),
                    v["span"].as_str()?.to_string(),
                    v["parent"].as_str().map(str::to_string),
                    v["name"].as_str()?.to_string(),
                    v["dur_secs"].as_f64()?,
                ))
            });
        match parsed {
            Some((trace, span, parent, name, dur)) => {
                if let Some(parent) = parent {
                    *child_secs.entry((trace.clone(), parent)).or_default() += dur;
                }
                spans.insert((trace, span), (name, dur));
            }
            None => skipped += 1,
        }
    }
    if spans.is_empty() {
        return Err(CliError::Runtime(format!(
            "{path}: no parseable spans ({skipped} malformed lines)"
        )));
    }
    let mut by_name: std::collections::BTreeMap<String, SpanSummary> =
        std::collections::BTreeMap::new();
    for (key, (name, dur)) in &spans {
        let entry = by_name.entry(name.clone()).or_default();
        entry.durations.push(*dur);
        entry.child_secs += child_secs.get(key).copied().unwrap_or(0.0);
    }
    let mut rows: Vec<(String, SpanSummary)> = by_name.into_iter().collect();
    rows.sort_by(|a, b| {
        b.1.total()
            .partial_cmp(&a.1.total())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    let mut out = format!(
        "{:<24} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "span", "count", "total_s", "self_s", "p50_s", "p95_s", "p99_s"
    );
    for (name, mut s) in rows {
        let total = s.total();
        out.push_str(&format!(
            "{:<24} {:>8} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}\n",
            name,
            s.durations.len(),
            total,
            (total - s.child_secs).max(0.0),
            s.quantile(0.50),
            s.quantile(0.95),
            s.quantile(0.99),
        ));
    }
    if skipped > 0 {
        out.push_str(&format!("({path}: {skipped} malformed lines skipped)\n"));
    }
    Ok(out)
}

/// Execute a parsed command; returns what should be printed to stdout.
pub fn run(command: Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Datasets => {
            let mut out = String::from("built-in experimental datasets (Table 1):\n");
            for d in atena_data::all_datasets() {
                out.push_str(&format!(
                    "  {:<9} {:<11} {:>6} rows  {}\n",
                    d.spec.id, d.spec.name, d.spec.rows, d.spec.description
                ));
            }
            Ok(out)
        }
        Command::DatasetsInspect { paths } => {
            // Offline mirror of `POST /v1/datasets`: same parser, same
            // content addressing, so the printed id matches what the server
            // would return for the identical bytes.
            use atena_registry::{dataset_id_for_fingerprint, ingest_csv};
            let limits = atena_registry::RegistryConfig::default().limits;
            let mut out = String::new();
            let mut seen: std::collections::BTreeMap<u64, String> =
                std::collections::BTreeMap::new();
            for path in &paths {
                let bytes = std::fs::read(path)
                    .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
                let frame = ingest_csv(&bytes, limits)
                    .map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
                let fp = frame.fingerprint();
                let id = dataset_id_for_fingerprint(fp);
                out.push_str(&format!(
                    "{path}\n  dataset_id  {id}\n  rows        {}\n  cols        {}\n  bytes       {}\n  schema\n",
                    frame.n_rows(),
                    frame.n_cols(),
                    frame.approx_bytes(),
                ));
                for field in frame.schema().fields() {
                    out.push_str(&format!(
                        "    {:<20} {:<6} {}\n",
                        field.name,
                        field.dtype.name(),
                        field.role.name()
                    ));
                }
                if let Some(first) = seen.get(&fp) {
                    out.push_str(&format!("  duplicate of {first} (identical content)\n"));
                } else {
                    seen.insert(fp, path.clone());
                }
            }
            Ok(out)
        }
        Command::Export { id, path } => {
            let dataset = atena_data::dataset_by_id(&id).ok_or_else(|| {
                CliError::Runtime(format!(
                    "unknown dataset {id:?}; run `atena datasets` for the list"
                ))
            })?;
            std::fs::write(&path, dataset.frame.to_csv_string())
                .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))?;
            Ok(format!(
                "{} ({} rows × {} columns) written to {path}",
                dataset.spec.name,
                dataset.frame.n_rows(),
                dataset.frame.n_cols()
            ))
        }
        Command::MetricsSummarize { path, format } => summarize_metrics(&path, format),
        Command::TraceSummarize { path } => summarize_trace(&path),
        Command::Train { id, opts } => {
            apply_telemetry_opts(&opts)?;
            let dataset = atena_data::dataset_by_id(&id).ok_or_else(|| {
                CliError::Runtime(format!(
                    "unknown dataset {id:?}; run `atena datasets` for the list"
                ))
            })?;
            let focal = if opts.focal.is_empty() {
                dataset.focal_attrs()
            } else {
                opts.focal.clone()
            };
            let config = config_for(&opts);
            atena_telemetry::info!(
                "training {} for {} steps on {} rollout threads ...",
                opts.strategy.name(),
                opts.steps,
                config.trainer.n_workers
            );
            let bundle =
                atena_core::train_policy_bundle(&id, dataset.frame, focal, config, opts.strategy)
                    .map_err(|e| CliError::Runtime(format!("training failed: {e}")))?;
            let mut out = bundle.describe();
            if let Some(path) = &opts.out {
                bundle
                    .save(std::path::Path::new(path))
                    .map_err(|e| CliError::Runtime(format!("cannot save checkpoint: {e}")))?;
                out.push_str(&format!("\nwritten to {path}"));
            }
            Ok(out)
        }
        Command::CheckpointSave { id, out, opts } => {
            apply_telemetry_opts(&opts)?;
            let dataset = atena_data::dataset_by_id(&id).ok_or_else(|| {
                CliError::Runtime(format!(
                    "unknown dataset {id:?}; run `atena datasets` for the list"
                ))
            })?;
            let focal = if opts.focal.is_empty() {
                dataset.focal_attrs()
            } else {
                opts.focal.clone()
            };
            atena_telemetry::info!(
                "training {} for {} steps before checkpointing ...",
                opts.strategy.name(),
                opts.steps
            );
            let bundle = atena_core::train_policy_bundle(
                &id,
                dataset.frame,
                focal,
                config_for(&opts),
                opts.strategy,
            )
            .map_err(|e| CliError::Runtime(format!("cannot train checkpoint: {e}")))?;
            bundle
                .save(std::path::Path::new(&out))
                .map_err(|e| CliError::Runtime(format!("cannot save checkpoint: {e}")))?;
            Ok(format!("{}\nwritten to {out}", bundle.describe()))
        }
        Command::CheckpointLoad { path } => {
            let bundle = atena_core::PolicyBundle::load(std::path::Path::new(&path))
                .map_err(|e| CliError::Runtime(format!("cannot load checkpoint: {e}")))?;
            // Rebuilding the policy proves the parameter blob matches the
            // recorded architecture, not just that the JSON parses.
            bundle
                .build_policy()
                .map_err(|e| CliError::Runtime(format!("checkpoint is not loadable: {e}")))?;
            Ok(bundle.describe())
        }
        Command::Serve {
            checkpoint,
            addr,
            workers,
            cache_size,
            slow_ms,
            timeout_ms,
            trace_out,
            registry_budget_mb,
            upload_max_mb,
            tenant_max_inflight,
            tenant_quota_mb,
            max_batch,
            batch_window_us,
        } => {
            if let Some(path) = &trace_out {
                set_trace_sink(path)?;
            }
            let bundle = atena_core::PolicyBundle::load(std::path::Path::new(&checkpoint))
                .map_err(|e| CliError::Runtime(format!("cannot load checkpoint: {e}")))?;
            let dataset = atena_data::dataset_by_id(&bundle.dataset).ok_or_else(|| {
                CliError::Runtime(format!(
                    "checkpoint was trained on dataset {:?}, which is not built in",
                    bundle.dataset
                ))
            })?;
            let description = bundle.describe();
            let engine = atena_server::Engine::new(bundle, dataset.frame)
                .map_err(|e| CliError::Runtime(format!("cannot build engine: {e}")))?;
            let mut registry = atena_registry::RegistryConfig {
                budget_bytes: registry_budget_mb << 20,
                tenant_quota_bytes: tenant_quota_mb << 20,
                ..Default::default()
            };
            registry.limits.max_bytes = upload_max_mb << 20;
            let config = atena_server::ServerConfig {
                addr,
                workers,
                cache_size,
                slow_threshold: std::time::Duration::from_millis(slow_ms),
                request_timeout: std::time::Duration::from_millis(timeout_ms),
                registry,
                tenant_limits: atena_registry::TenantLimits {
                    max_inflight: tenant_max_inflight,
                    ..Default::default()
                },
                max_batch,
                batch_window: std::time::Duration::from_micros(batch_window_us),
                ..Default::default()
            };
            let server = atena_server::Server::bind(config, engine)
                .map_err(|e| CliError::Runtime(format!("cannot bind: {e}")))?;
            let bound = server
                .local_addr()
                .map_err(|e| CliError::Runtime(format!("cannot resolve bound address: {e}")))?;
            atena_server::install_handlers();
            // Printed (and flushed) before blocking so scripts tailing our
            // stdout learn the ephemeral port.
            println!("loaded {description}");
            println!("listening on {bound}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            server.run();
            Ok(format!("server on {bound} shut down gracefully"))
        }
        Command::Generate { path, opts } => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
            let frame = DataFrame::from_csv_str(&text)
                .map_err(|e| CliError::Runtime(format!("cannot parse {path}: {e}")))?;
            generate(&path, frame, &opts)
        }
        Command::Demo { id, opts } => {
            let dataset = atena_data::dataset_by_id(&id).ok_or_else(|| {
                CliError::Runtime(format!(
                    "unknown dataset {id:?}; run `atena datasets` for the list"
                ))
            })?;
            let mut opts = opts;
            if opts.focal.is_empty() {
                opts.focal = dataset.focal_attrs();
            }
            generate(&dataset.spec.name.clone(), dataset.frame, &opts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_help_and_datasets() {
        assert_eq!(parse(&args(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["--help"])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["datasets"])).unwrap(), Command::Datasets);
    }

    #[test]
    fn parses_generate_with_options() {
        let cmd = parse(&args(&[
            "generate",
            "data.csv",
            "--focal",
            "delay,airline",
            "--steps",
            "123",
            "--episode-len",
            "7",
            "--strategy",
            "greedy-cr",
            "--seed",
            "9",
            "--out",
            "nb.md",
            "--json",
            "nb.json",
        ]))
        .unwrap();
        let Command::Generate { path, opts } = cmd else {
            panic!()
        };
        assert_eq!(path, "data.csv");
        assert_eq!(opts.focal, vec!["delay", "airline"]);
        assert_eq!(opts.steps, 123);
        assert_eq!(opts.episode_len, 7);
        assert_eq!(opts.strategy, Strategy::GreedyCr);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.out.as_deref(), Some("nb.md"));
        assert_eq!(opts.json.as_deref(), Some("nb.json"));
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(matches!(
            parse(&args(&["generate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&["demo", "--steps"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&["generate", "f.csv", "--bogus"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&["generate", "f.csv", "--steps", "abc"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&["generate", "f.csv", "--episode-len", "0"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_all_strategies() {
        for (name, expected) in [
            ("atena", Strategy::Atena),
            ("ATN-IO", Strategy::AtnIo),
            ("ots-drl", Strategy::OtsDrl),
            ("OTS-DRL-B", Strategy::OtsDrlB),
            ("greedy-cr", Strategy::GreedyCr),
            ("greedyio", Strategy::GreedyIo),
        ] {
            assert_eq!(parse_strategy(name).unwrap(), expected);
        }
        assert!(parse_strategy("dqn").is_err());
    }

    #[test]
    fn parses_telemetry_options() {
        let cmd = parse(&args(&[
            "demo",
            "cyber1",
            "--log-level",
            "debug",
            "--metrics-out",
            "m.jsonl",
        ]))
        .unwrap();
        let Command::Demo { opts, .. } = cmd else {
            panic!()
        };
        assert_eq!(opts.log_level, Some(atena_telemetry::Level::Debug));
        assert_eq!(opts.metrics_out.as_deref(), Some("m.jsonl"));
        assert!(matches!(
            parse(&args(&["demo", "cyber1", "--log-level", "loud"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_metrics_summarize() {
        assert_eq!(
            parse(&args(&["metrics", "summarize", "m.jsonl"])).unwrap(),
            Command::MetricsSummarize {
                path: "m.jsonl".into(),
                format: SummaryFormat::Text,
            }
        );
        assert_eq!(
            parse(&args(&[
                "metrics",
                "summarize",
                "m.jsonl",
                "--format",
                "json"
            ]))
            .unwrap(),
            Command::MetricsSummarize {
                path: "m.jsonl".into(),
                format: SummaryFormat::Json,
            }
        );
        assert!(matches!(
            parse(&args(&["metrics"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&["metrics", "summarize"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&[
                "metrics",
                "summarize",
                "m.jsonl",
                "--format",
                "xml"
            ])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_trace_summarize() {
        assert_eq!(
            parse(&args(&["trace", "summarize", "t.jsonl"])).unwrap(),
            Command::TraceSummarize {
                path: "t.jsonl".into()
            }
        );
        assert!(matches!(parse(&args(&["trace"])), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&args(&["trace", "summarize"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn summarize_aggregates_jsonl() {
        let dir = std::env::temp_dir().join("atena-cli-metrics");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.jsonl");
        std::fs::write(
            &path,
            "\
{\"ts\":1.0,\"kind\":\"iteration\",\"name\":\"train.policy_loss\",\"value\":0.5,\"labels\":{\"iter\":\"0\"}}
{\"ts\":2.0,\"kind\":\"iteration\",\"name\":\"train.policy_loss\",\"value\":0.25,\"labels\":{\"iter\":\"1\"}}
{\"ts\":2.0,\"kind\":\"episode\",\"name\":\"reward.total\",\"value\":3.0,\"labels\":{}}
",
        )
        .unwrap();
        let out = run(Command::MetricsSummarize {
            path: path.to_string_lossy().into_owned(),
            format: SummaryFormat::Text,
        })
        .unwrap();
        assert!(out.contains("train.policy_loss"), "{out}");
        assert!(out.contains("reward.total"), "{out}");
        // mean of 0.5 and 0.25
        assert!(out.contains("0.37500"), "{out}");

        // The same file as JSON: one parseable object with per-metric rows.
        let out = run(Command::MetricsSummarize {
            path: path.to_string_lossy().into_owned(),
            format: SummaryFormat::Json,
        })
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(out.trim()).expect("JSON summary parses");
        assert_eq!(v["skipped"].as_u64(), Some(0));
        let metrics = v["metrics"].as_array().unwrap();
        assert_eq!(metrics.len(), 2);
        let loss = metrics
            .iter()
            .find(|m| m["name"].as_str() == Some("train.policy_loss"))
            .unwrap();
        assert_eq!(loss["count"].as_u64(), Some(2));
        assert_eq!(loss["mean"].as_f64(), Some(0.375));
        assert_eq!(loss["last"].as_f64(), Some(0.25));
    }

    #[test]
    fn summarize_tolerates_partial_but_rejects_empty_files() {
        let dir = std::env::temp_dir().join("atena-cli-metrics-robust");
        std::fs::create_dir_all(&dir).unwrap();

        // Empty file: zero parseable records is an error (nonzero exit), so
        // CI assertions on a summary can't silently pass on a dead stream.
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        let err = summarize_metrics(&empty.to_string_lossy(), SummaryFormat::Text).unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)), "{err}");

        // Entirely malformed: same, and the message counts the junk.
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{not json\n").unwrap();
        let err = summarize_metrics(&bad.to_string_lossy(), SummaryFormat::Json).unwrap_err();
        let CliError::Runtime(msg) = err else {
            panic!()
        };
        assert!(msg.contains("no parseable event records"), "{msg}");
        assert!(msg.contains("1 malformed"), "{msg}");

        // Truncated tail (process killed mid-write): the good lines still
        // aggregate; the partial line is counted, not fatal.
        let truncated = dir.join("truncated.jsonl");
        std::fs::write(
            &truncated,
            "\
{\"ts\":1.0,\"kind\":\"counter\",\"name\":\"steps\",\"value\":10,\"labels\":{}}
{\"ts\":2.0,\"kind\":\"counter\",\"name\":\"steps\",\"value\":20,\"labels\":{}}
{\"ts\":3.0,\"kind\":\"counter\",\"na",
        )
        .unwrap();
        let out = summarize_metrics(&truncated.to_string_lossy(), SummaryFormat::Text).unwrap();
        assert!(out.contains("steps"), "{out}");
        assert!(out.contains("1 malformed line skipped"), "{out}");
        // Valid JSON that is not an event record (e.g. a log line) is also
        // skipped rather than aborting.
        let mixed = dir.join("mixed.jsonl");
        std::fs::write(
            &mixed,
            "{\"msg\":\"hello\"}\n{\"ts\":1.0,\"kind\":\"gauge\",\"name\":\"g\",\"value\":1.5,\"labels\":{}}\n",
        )
        .unwrap();
        let out = summarize_metrics(&mixed.to_string_lossy(), SummaryFormat::Text).unwrap();
        assert!(out.contains('g'), "{out}");
        assert!(out.contains("1 malformed line skipped"), "{out}");
    }

    #[test]
    fn trace_summarize_builds_flame_table_with_self_time() {
        let dir = std::env::temp_dir().join("atena-cli-trace-flame");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        // One request-shaped trace: a 1.0s root with a 0.7s child that has
        // a 0.2s grandchild, plus a second trace with only a root. Self
        // times: root 0.3, child 0.5, grandchild 0.2.
        std::fs::write(
            &path,
            "\
{\"trace\":\"000000000000000a\",\"span\":\"0000000000000001\",\"parent\":null,\"name\":\"req\",\"ts\":1.0,\"dur_secs\":1.0,\"attrs\":{}}
{\"trace\":\"000000000000000a\",\"span\":\"0000000000000002\",\"parent\":\"0000000000000001\",\"name\":\"decode\",\"ts\":1.1,\"dur_secs\":0.7,\"attrs\":{}}
{\"trace\":\"000000000000000a\",\"span\":\"0000000000000003\",\"parent\":\"0000000000000002\",\"name\":\"forward\",\"ts\":1.2,\"dur_secs\":0.2,\"attrs\":{}}
{\"trace\":\"000000000000000b\",\"span\":\"0000000000000001\",\"parent\":null,\"name\":\"req\",\"ts\":2.0,\"dur_secs\":0.5,\"attrs\":{}}
garbage line
",
        )
        .unwrap();
        let out = summarize_trace(&path.to_string_lossy()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        // Sorted by total descending: req (1.5) > decode (0.7) > forward.
        assert!(lines[1].starts_with("req"), "{out}");
        assert!(lines[2].starts_with("decode"), "{out}");
        assert!(lines[3].starts_with("forward"), "{out}");
        // req: 2 calls, total 1.5, self 1.5 − 0.7 = 0.8 (the child only
        // subtracts from the trace it belongs to).
        assert!(lines[1].contains("       2"), "{out}");
        assert!(lines[1].contains("1.500000"), "{out}");
        assert!(lines[1].contains("0.800000"), "{out}");
        // decode: self 0.7 − 0.2 = 0.5.
        assert!(lines[2].contains("0.500000"), "{out}");
        // forward is a leaf: self == total.
        assert!(lines[3].contains("0.200000"), "{out}");
        assert!(out.contains("1 malformed lines skipped"), "{out}");

        // Zero parseable spans is an error.
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "junk\n").unwrap();
        assert!(matches!(
            summarize_trace(&empty.to_string_lossy()),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn trace_export_round_trips_through_summarize() {
        let dir = std::env::temp_dir().join("atena-cli-trace-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("emitted.jsonl");
        // Emit through a private tracer (not the global one: parallel tests
        // share that) with exact-duration children for exact totals.
        let tracer = atena_telemetry::Tracer::new();
        tracer.set_jsonl_sink(&path).unwrap();
        for i in 0..3 {
            let trace = tracer.trace("iteration");
            let root = atena_telemetry::ROOT_SPAN_ID;
            let collect = trace.record_exact(root, "collect", 0.5, vec![("iter", i.to_string())]);
            trace.record_exact(collect, "worker", 0.2, Vec::new());
            trace.record_exact(collect, "worker", 0.25, Vec::new());
        }
        tracer.flush();
        assert_eq!(tracer.counts().traces_recorded, 3);

        let out = summarize_trace(&path.to_string_lossy()).unwrap();
        let collect_row = out
            .lines()
            .find(|l| l.starts_with("collect"))
            .expect("collect row");
        let worker_row = out
            .lines()
            .find(|l| l.starts_with("worker"))
            .expect("worker row");
        // collect: 3 × 0.5s total, self 0.5 − 0.45 per call.
        assert!(collect_row.contains("1.500000"), "{out}");
        assert!(collect_row.contains("0.150000"), "{out}");
        // worker: 6 calls, 3×0.2 + 3×0.25 = 1.35 total, leaf so self==total.
        assert!(worker_row.contains("       6"), "{out}");
        assert!(worker_row.contains("1.350000"), "{out}");
        // iteration roots: 3 calls with measured (tiny) wall durations.
        assert!(out.lines().any(|l| l.starts_with("iteration")), "{out}");
    }

    #[test]
    fn parses_train_command() {
        let cmd = parse(&args(&[
            "train",
            "cyber2",
            "--steps",
            "400",
            "--workers",
            "4",
            "--out",
            "c.json",
        ]))
        .unwrap();
        let Command::Train { id, opts } = cmd else {
            panic!()
        };
        assert_eq!(id, "cyber2");
        assert_eq!(opts.steps, 400);
        assert_eq!(opts.workers, Some(4));
        assert_eq!(opts.out.as_deref(), Some("c.json"));
        // --out is optional; --workers defaults to None (auto-detect).
        let Command::Train { opts, .. } = parse(&args(&["train", "cyber2"])).unwrap() else {
            panic!()
        };
        assert_eq!(opts.workers, None);
        assert_eq!(opts.out, None);
        assert!(matches!(parse(&args(&["train"])), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&args(&["train", "cyber2", "--workers", "x"])),
            Err(CliError::Usage(_))
        ));
        // Non-learned strategies have nothing to train.
        assert!(matches!(
            parse(&args(&["train", "cyber2", "--strategy", "greedy-io"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn workers_flag_parses_on_generate_paths() {
        let Command::Demo { opts, .. } =
            parse(&args(&["demo", "cyber1", "--workers", "2"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(opts.workers, Some(2));
        let config = config_for(&opts);
        assert_eq!(config.trainer.n_workers, 2);
        // Unset: auto-detect yields at least one thread.
        let auto = config_for(&GenerateOpts::default());
        assert!(auto.trainer.n_workers >= 1);
    }

    #[test]
    fn batch_lanes_flag_parses_on_generate_paths() {
        let Command::Train { opts, .. } =
            parse(&args(&["train", "cyber2", "--batch-lanes", "8"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(opts.batch_lanes, 8);
        let config = config_for(&opts);
        assert_eq!(config.trainer.batch_lanes, 8);
        // Default: lane batching off.
        assert_eq!(config_for(&GenerateOpts::default()).trainer.batch_lanes, 0);
        assert!(matches!(
            parse(&args(&["train", "cyber2", "--batch-lanes", "x"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn summarize_prints_metrics_sorted_by_name() {
        let dir = std::env::temp_dir().join("atena-cli-metrics-sorted");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.jsonl");
        // Deliberately unsorted input, with kinds that would sort the old
        // kind-major way.
        std::fs::write(
            &path,
            "\
{\"ts\":1.0,\"kind\":\"iteration\",\"name\":\"zeta.metric\",\"value\":1.0,\"labels\":{}}
{\"ts\":1.0,\"kind\":\"counter\",\"name\":\"runtime.worker.0.items\",\"value\":5.0,\"labels\":{}}
{\"ts\":1.0,\"kind\":\"episode\",\"name\":\"alpha.metric\",\"value\":2.0,\"labels\":{}}
",
        )
        .unwrap();
        let out = summarize_metrics(&path.to_string_lossy(), SummaryFormat::Text).unwrap();
        let alpha = out.find("alpha.metric").unwrap();
        let runtime = out.find("runtime.worker.0.items").unwrap();
        let zeta = out.find("zeta.metric").unwrap();
        assert!(alpha < runtime && runtime < zeta, "not name-sorted:\n{out}");
    }

    #[test]
    fn parses_checkpoint_commands() {
        let cmd = parse(&args(&[
            "checkpoint",
            "save",
            "cyber1",
            "--out",
            "c.json",
            "--steps",
            "500",
            "--episode-len",
            "6",
        ]))
        .unwrap();
        let Command::CheckpointSave { id, out, opts } = cmd else {
            panic!()
        };
        assert_eq!(id, "cyber1");
        assert_eq!(out, "c.json");
        assert_eq!(opts.steps, 500);
        assert_eq!(opts.episode_len, 6);
        assert_eq!(
            parse(&args(&["checkpoint", "load", "c.json"])).unwrap(),
            Command::CheckpointLoad {
                path: "c.json".into()
            }
        );
        // --out is mandatory; greedy strategies have nothing to checkpoint.
        assert!(matches!(
            parse(&args(&["checkpoint", "save", "cyber1"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&[
                "checkpoint",
                "save",
                "cyber1",
                "--out",
                "c.json",
                "--strategy",
                "greedy-cr"
            ])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&["checkpoint"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_serve_command() {
        let cmd = parse(&args(&[
            "serve",
            "--checkpoint",
            "c.json",
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "8",
            "--cache-size",
            "32",
            "--slow-ms",
            "100",
            "--timeout-ms",
            "2500",
            "--trace-out",
            "t.jsonl",
            "--registry-budget-mb",
            "64",
            "--upload-max-mb",
            "2",
            "--tenant-max-inflight",
            "3",
            "--tenant-quota-mb",
            "16",
            "--max-batch",
            "8",
            "--batch-window-us",
            "150",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                checkpoint: "c.json".into(),
                addr: "0.0.0.0:9000".into(),
                workers: 8,
                cache_size: 32,
                slow_ms: 100,
                timeout_ms: 2500,
                trace_out: Some("t.jsonl".into()),
                registry_budget_mb: 64,
                upload_max_mb: 2,
                tenant_max_inflight: 3,
                tenant_quota_mb: 16,
                max_batch: 8,
                batch_window_us: 150,
            }
        );
        // Defaults.
        let Command::Serve {
            addr,
            workers,
            cache_size,
            slow_ms,
            timeout_ms,
            trace_out,
            registry_budget_mb,
            upload_max_mb,
            tenant_max_inflight,
            tenant_quota_mb,
            max_batch,
            batch_window_us,
            ..
        } = parse(&args(&["serve", "--checkpoint", "c.json"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(addr, "127.0.0.1:8080");
        assert_eq!(workers, 4);
        assert_eq!(cache_size, 256);
        assert_eq!(slow_ms, 500);
        assert_eq!(timeout_ms, 10_000, "per-request deadline defaults to 10s");
        assert_eq!(trace_out, None);
        assert_eq!(registry_budget_mb, 256);
        assert_eq!(upload_max_mb, 8);
        assert_eq!(tenant_max_inflight, 8);
        assert_eq!(tenant_quota_mb, 64);
        assert_eq!(max_batch, 1, "batching defaults off");
        assert_eq!(batch_window_us, 200);
        assert!(matches!(parse(&args(&["serve"])), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&args(&[
                "serve",
                "--checkpoint",
                "c.json",
                "--max-batch",
                "0"
            ])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&[
                "serve",
                "--checkpoint",
                "c.json",
                "--workers",
                "x"
            ])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&[
                "serve",
                "--checkpoint",
                "c.json",
                "--slow-ms",
                "x"
            ])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn trace_out_flag_parses_on_generate_paths() {
        let Command::Demo { opts, .. } =
            parse(&args(&["demo", "cyber1", "--trace-out", "t.jsonl"])).unwrap()
        else {
            panic!()
        };
        assert_eq!(opts.trace_out.as_deref(), Some("t.jsonl"));
        assert!(matches!(
            parse(&args(&["demo", "cyber1", "--trace-out"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn datasets_inspect_parses_and_reports_identity() {
        assert_eq!(
            parse(&args(&["datasets", "inspect", "a.csv", "b.csv"])).unwrap(),
            Command::DatasetsInspect {
                paths: vec!["a.csv".into(), "b.csv".into()]
            }
        );
        assert!(matches!(
            parse(&args(&["datasets", "inspect"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse(&args(&["datasets", "frobnicate"])),
            Err(CliError::Usage(_))
        ));

        // Two copies of the same content → same id, flagged as duplicate;
        // the id matches the registry's content addressing.
        let dir = std::env::temp_dir().join("atena-cli-inspect");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.csv");
        let b = dir.join("b.csv");
        std::fs::write(&a, "proto,len\ntcp,1\nudp,2\n").unwrap();
        std::fs::write(&b, "proto,len\ntcp,1\nudp,2\n").unwrap();
        let out = run(Command::DatasetsInspect {
            paths: vec![a.display().to_string(), b.display().to_string()],
        })
        .unwrap();
        let frame = atena_dataframe::DataFrame::from_csv_str("proto,len\ntcp,1\nudp,2\n").unwrap();
        let id = atena_registry::dataset_id_for_fingerprint(frame.fingerprint());
        assert_eq!(out.matches(&id).count(), 2, "{out}");
        assert!(out.contains("duplicate of"), "{out}");
        assert!(out.contains("proto"), "{out}");
        assert!(out.contains("int"), "{out}");

        let missing = run(Command::DatasetsInspect {
            paths: vec![dir.join("nope.csv").display().to_string()],
        });
        assert!(matches!(missing, Err(CliError::Runtime(_))));
    }

    #[test]
    fn datasets_command_lists_all_eight() {
        let out = run(Command::Datasets).unwrap();
        for id in ["cyber1", "cyber4", "flights1", "flights4"] {
            assert!(out.contains(id), "missing {id} in:\n{out}");
        }
    }

    #[test]
    fn export_round_trips_through_csv() {
        let dir = std::env::temp_dir().join("atena-cli-export");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cyber2.csv");
        let out = run(Command::Export {
            id: "cyber2".into(),
            path: path.to_string_lossy().into_owned(),
        })
        .unwrap();
        assert!(out.contains("348 rows"));
        let text = std::fs::read_to_string(&path).unwrap();
        let df = DataFrame::from_csv_str(&text).unwrap();
        assert_eq!(df.n_rows(), 348);
        assert!(matches!(
            run(Command::Export {
                id: "zzz".into(),
                path: "x.csv".into()
            }),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(
            parse(&args(&["export", "cyber1"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn unknown_demo_dataset_is_runtime_error() {
        let err = run(Command::Demo {
            id: "nope".into(),
            opts: GenerateOpts::default(),
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)));
    }

    #[test]
    fn generate_from_missing_file_is_runtime_error() {
        let err = run(Command::Generate {
            path: "/definitely/not/here.csv".into(),
            opts: GenerateOpts::default(),
        })
        .unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)));
    }

    #[test]
    fn end_to_end_generate_tiny() {
        let dir = std::env::temp_dir().join("atena-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("tiny.csv");
        std::fs::write(&csv, "cat,val\na,1\nb,2\na,3\nb,4\na,5\n").unwrap();
        let md_path = dir.join("nb.md");
        let json_path = dir.join("nb.json");
        let cmd = Command::Generate {
            path: csv.to_string_lossy().into_owned(),
            opts: GenerateOpts {
                steps: 200,
                episode_len: 3,
                strategy: Strategy::GreedyCr,
                out: Some(md_path.to_string_lossy().into_owned()),
                json: Some(json_path.to_string_lossy().into_owned()),
                ..Default::default()
            },
        };
        let stdout = run(cmd).unwrap();
        assert!(stdout.is_empty());
        let md = std::fs::read_to_string(&md_path).unwrap();
        assert!(md.contains("# Auto-EDA for"));
        let json: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        assert_eq!(json["cells"].as_array().unwrap().len(), 3);
    }
}
