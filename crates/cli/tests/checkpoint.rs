//! Integration test for the `atena checkpoint save` / `checkpoint load`
//! CLI path: train a small policy on a built-in dataset, write the
//! checkpoint to disk through the command layer, then load and validate it
//! the same way the `serve` command would.

use atena_cli::{parse, run, Command};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn checkpoint_save_then_load_round_trips() {
    let dir = std::env::temp_dir().join("atena-cli-checkpoint");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("cyber2.ckpt.json");
    let ckpt_str = ckpt.to_string_lossy().into_owned();

    // Save: exercise the real argv surface, not just the Command enum.
    let cmd = parse(&args(&[
        "checkpoint",
        "save",
        "cyber2",
        "--out",
        &ckpt_str,
        "--steps",
        "150",
        "--episode-len",
        "3",
        "--seed",
        "1",
    ]))
    .unwrap();
    let out = run(cmd).unwrap();
    assert!(out.contains("dataset \"cyber2\""), "{out}");
    assert!(out.contains(&format!("written to {ckpt_str}")), "{out}");
    assert!(ckpt.exists());

    // Load: validates the parameter blob against the recorded architecture
    // and prints the description.
    let out = run(parse(&args(&["checkpoint", "load", &ckpt_str])).unwrap()).unwrap();
    assert!(out.contains("dataset \"cyber2\""), "{out}");
    assert!(out.contains("strategy ATENA"), "{out}");
    // The trainer rounds the step budget up to whole batches, so assert the
    // provenance is present rather than an exact count.
    assert!(out.contains("trained"), "{out}");
    assert!(out.contains("episode_len 3"), "{out}");

    // The saved bundle is exactly what the server consumes.
    let bundle = atena_core::PolicyBundle::load(&ckpt).unwrap();
    let dataset = atena_data::dataset_by_id(&bundle.dataset).unwrap();
    atena_server::Engine::new(bundle, dataset.frame).unwrap();
}

#[test]
fn checkpoint_load_rejects_garbage() {
    let dir = std::env::temp_dir().join("atena-cli-checkpoint");
    std::fs::create_dir_all(&dir).unwrap();
    let bogus = dir.join("bogus.ckpt.json");
    std::fs::write(&bogus, "{\"not\":\"a bundle\"}").unwrap();
    let err = run(Command::CheckpointLoad {
        path: bogus.to_string_lossy().into_owned(),
    })
    .unwrap_err();
    assert!(matches!(err, atena_cli::CliError::Runtime(_)));

    let missing = run(Command::CheckpointLoad {
        path: "/definitely/not/here.json".into(),
    })
    .unwrap_err();
    assert!(matches!(missing, atena_cli::CliError::Runtime(_)));
}
