//! # atena-nn
//!
//! A minimal, dependency-light neural-network library: dense `f32` tensors,
//! reverse-mode autodiff on a flat tape, linear/MLP layers, and SGD/Adam
//! optimizers. It replaces the ChainerRL/Chainer substrate the original
//! ATENA implementation uses — the policy networks here are small MLPs, so
//! a pure-Rust implementation is both sufficient and fully reproducible.
//!
//! The op set is exactly what the actor-critic losses need: matmul, bias
//! broadcast, ReLU/tanh/exp, row-wise log-softmax, per-row gather,
//! reductions, elementwise min and stop-gradient clamp (for the PPO clipped
//! surrogate), and entropy expressions.
//!
//! ```
//! use atena_nn::{Graph, Mlp, ParamSet, Tensor, Adam};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mlp = Mlp::new("trunk", &[4, 8], &mut rng);
//! let mut params = ParamSet::new();
//! mlp.register(&mut params);
//! let mut opt = Adam::new(&params, 1e-3);
//!
//! let mut g = Graph::new();
//! let x = g.constant(Tensor::zeros(2, 4));
//! let h = mlp.forward(&mut g, x);
//! let loss = g.mean_all(h);
//! g.backward(loss);
//! opt.step(&params);
//! ```

#![warn(missing_docs)]

mod graph;
mod layers;
mod optim;
mod param;
mod tensor;

pub use graph::{Graph, NodeId};
pub use layers::{Init, Linear, Mlp};
pub use optim::{Adam, Sgd};
pub use param::{Param, ParamData, ParamSet};
pub use tensor::{log_softmax_rows, softmax_rows, MatmulError, Tensor};
