//! Trainable parameters, shareable across rollout worker threads.

use crate::tensor::Tensor;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Inner storage of a parameter: value and accumulated gradient.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamData {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

/// A trainable parameter tensor.
///
/// Parameters are `Arc<RwLock<..>>` so that a policy can be cloned cheaply
/// into rollout worker threads (which only read values) while the trainer
/// thread writes gradients and applies optimizer updates.
#[derive(Debug, Clone)]
pub struct Param {
    inner: Arc<RwLock<ParamData>>,
    name: String,
}

impl Param {
    /// Create a parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.rows(), value.cols());
        Self {
            inner: Arc::new(RwLock::new(ParamData { value, grad })),
            name: name.into(),
        }
    }

    /// Parameter name (for diagnostics and serialization).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shape of the parameter.
    pub fn shape(&self) -> (usize, usize) {
        let d = self.inner.read();
        d.value.shape()
    }

    /// Snapshot of the current value.
    pub fn value(&self) -> Tensor {
        self.inner.read().value.clone()
    }

    /// Run `f` against the current value under the read lock, without
    /// cloning. The batched inference path calls this per layer per step;
    /// [`Param::value`] would copy the full weight matrix each time.
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.inner.read().value)
    }

    /// Overwrite the value (e.g. loading a checkpoint).
    pub fn set_value(&self, value: Tensor) {
        let mut d = self.inner.write();
        assert_eq!(d.value.shape(), value.shape(), "parameter shape mismatch");
        d.value = value;
    }

    /// Snapshot of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.inner.read().grad.clone()
    }

    /// Add `delta` into the accumulated gradient.
    pub fn accumulate_grad(&self, delta: &Tensor) {
        self.inner.write().grad.add_assign(delta);
    }

    /// Zero the accumulated gradient.
    pub fn zero_grad(&self) {
        self.inner.write().grad.fill_zero();
    }

    /// Apply an update function to `(value, grad)` under the write lock.
    pub fn update(&self, f: impl FnOnce(&mut Tensor, &Tensor)) {
        let mut d = self.inner.write();
        // Split borrow: temporarily take the grad out.
        let grad = std::mem::replace(&mut d.grad, Tensor::zeros(0, 0));
        f(&mut d.value, &grad);
        d.grad = grad;
    }

    /// Deep copy with independent storage (used to snapshot policies).
    pub fn deep_clone(&self) -> Param {
        let d = self.inner.read();
        Param::new(self.name.clone(), d.value.clone())
    }

    /// Number of scalar parameters.
    pub fn n_elements(&self) -> usize {
        let d = self.inner.read();
        d.value.len()
    }
}

/// A named collection of parameters — everything an optimizer steps over
/// and a checkpoint (de)serializes.
#[derive(Debug, Clone, Default)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parameter.
    pub fn register(&mut self, param: Param) {
        self.params.push(param);
    }

    /// Extend with all parameters of another set.
    pub fn extend(&mut self, other: &ParamSet) {
        self.params.extend(other.params.iter().cloned());
    }

    /// All parameters.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Total number of scalar parameters.
    pub fn n_elements(&self) -> usize {
        self.params.iter().map(Param::n_elements).sum()
    }

    /// Zero all gradients.
    pub fn zero_grads(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Global L2 norm of all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| p.grad().sum_squares())
            .sum::<f32>()
            .sqrt()
    }

    /// Scale gradients so their global norm does not exceed `max_norm`.
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &self.params {
                let mut d = p.inner.write();
                for g in d.grad.data_mut() {
                    *g *= scale;
                }
            }
        }
        norm
    }

    /// Serialize all parameter values as `(name, tensor)` pairs.
    pub fn state(&self) -> Vec<(String, Tensor)> {
        self.params
            .iter()
            .map(|p| (p.name().to_string(), p.value()))
            .collect()
    }

    /// Load values by name. Unknown names are ignored; missing names are an
    /// error.
    pub fn load_state(&self, state: &[(String, Tensor)]) -> Result<(), String> {
        for p in &self.params {
            let found = state.iter().find(|(n, _)| n == p.name());
            match found {
                Some((_, t)) => {
                    if t.shape() != p.shape() {
                        return Err(format!(
                            "shape mismatch for {}: checkpoint {:?}, model {:?}",
                            p.name(),
                            t.shape(),
                            p.shape()
                        ));
                    }
                    p.set_value(t.clone());
                }
                None => return Err(format!("missing parameter in checkpoint: {}", p.name())),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grad_accumulation_and_zero() {
        let p = Param::new("w", Tensor::zeros(2, 2));
        p.accumulate_grad(&Tensor::full(2, 2, 1.0));
        p.accumulate_grad(&Tensor::full(2, 2, 0.5));
        assert_eq!(p.grad().data(), &[1.5; 4]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0; 4]);
    }

    #[test]
    fn update_sees_grad() {
        let p = Param::new("w", Tensor::full(1, 2, 1.0));
        p.accumulate_grad(&Tensor::full(1, 2, 2.0));
        p.update(|v, g| {
            for (v, g) in v.data_mut().iter_mut().zip(g.data()) {
                *v -= 0.1 * g;
            }
        });
        assert_eq!(p.value().data(), &[0.8, 0.8]);
    }

    #[test]
    fn clones_share_storage_deep_clone_does_not() {
        let p = Param::new("w", Tensor::zeros(1, 1));
        let shared = p.clone();
        let deep = p.deep_clone();
        p.set_value(Tensor::full(1, 1, 3.0));
        assert_eq!(shared.value().scalar(), 3.0);
        assert_eq!(deep.value().scalar(), 0.0);
    }

    #[test]
    fn clip_grad_norm_scales() {
        let mut set = ParamSet::new();
        let p = Param::new("w", Tensor::zeros(1, 2));
        p.accumulate_grad(&Tensor::from_vec(1, 2, vec![3.0, 4.0])); // norm 5
        set.register(p.clone());
        let pre = set.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((set.grad_norm() - 1.0).abs() < 1e-5);
        // Below the cap: untouched.
        let pre2 = set.clip_grad_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn state_round_trip() {
        let mut set = ParamSet::new();
        set.register(Param::new("a", Tensor::full(1, 2, 1.0)));
        set.register(Param::new("b", Tensor::full(2, 1, 2.0)));
        let state = set.state();

        let mut other = ParamSet::new();
        other.register(Param::new("a", Tensor::zeros(1, 2)));
        other.register(Param::new("b", Tensor::zeros(2, 1)));
        other.load_state(&state).unwrap();
        assert_eq!(other.params()[0].value().data(), &[1.0, 1.0]);

        let mut bad = ParamSet::new();
        bad.register(Param::new("zzz", Tensor::zeros(1, 1)));
        assert!(bad.load_state(&state).is_err());
    }

    #[test]
    fn n_elements() {
        let mut set = ParamSet::new();
        set.register(Param::new("a", Tensor::zeros(3, 4)));
        set.register(Param::new("b", Tensor::zeros(1, 4)));
        assert_eq!(set.n_elements(), 16);
    }
}
