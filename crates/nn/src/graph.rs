//! Reverse-mode automatic differentiation on a flat tape.
//!
//! Each forward pass builds a fresh [`Graph`]; operations append nodes that
//! record their inputs as an [`Op`] variant. [`Graph::backward`] walks the
//! tape in reverse, pattern-matching each op to propagate gradients —
//! no closures, no lifetimes, easy to audit.

use crate::param::Param;
use crate::tensor::{log_softmax_rows, Tensor};

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

/// The operation that produced a node.
#[derive(Debug, Clone)]
enum Op {
    /// Constant input or parameter leaf.
    Leaf,
    /// `A · B`.
    MatMul(NodeId, NodeId),
    /// Elementwise `A + B` (same shape).
    Add(NodeId, NodeId),
    /// `A + bias` where bias is 1×c broadcast over rows.
    AddRowBroadcast(NodeId, NodeId),
    /// Elementwise `A - B`.
    Sub(NodeId, NodeId),
    /// Elementwise `A * B`.
    Mul(NodeId, NodeId),
    /// `A * k`.
    Scale(NodeId, f32),
    /// `A + k` (the constant needs no gradient, so it is not stored).
    AddScalar(NodeId),
    /// `max(A, 0)`.
    Relu(NodeId),
    /// `tanh(A)`.
    Tanh(NodeId),
    /// `exp(A)`.
    Exp(NodeId),
    /// Row-wise log-softmax.
    LogSoftmaxRows(NodeId),
    /// One element per row: `y[i] = A[i, idx[i]]`, output r×1.
    PickPerRow(NodeId, Vec<usize>),
    /// Row sums, output r×1.
    SumRows(NodeId),
    /// Mean of all elements, output 1×1.
    MeanAll(NodeId),
    /// Sum of all elements, output 1×1.
    SumAll(NodeId),
    /// Elementwise minimum of A and B; the smaller branch gets the gradient.
    MinElem(NodeId, NodeId),
    /// `clamp(A, lo, hi)`; gradient passes only strictly inside the range
    /// (PPO-style stop-gradient at the clip boundary).
    Clamp(NodeId, f32, f32),
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
    /// For parameter leaves: where to flush the gradient after backward.
    param: Option<Param>,
    needs_grad: bool,
}

/// A single-use computation tape.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, value: Tensor, op: Op, needs_grad: bool) -> NodeId {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            param: None,
            needs_grad,
        });
        NodeId(self.nodes.len() - 1)
    }

    fn needs(&self, id: NodeId) -> bool {
        self.nodes[id.0].needs_grad
    }

    /// Insert a constant (no gradient flows into it).
    pub fn constant(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Leaf, false)
    }

    /// Insert a trainable parameter leaf; after [`Graph::backward`] the
    /// accumulated gradient is flushed into the parameter.
    pub fn param(&mut self, param: &Param) -> NodeId {
        let value = param.value();
        let id = self.push(value, Op::Leaf, true);
        self.nodes[id.0].param = Some(param.clone());
        id
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Gradient of a node (zeros if backward has not reached it).
    pub fn grad(&self, id: NodeId) -> Tensor {
        let n = &self.nodes[id.0];
        n.grad
            .clone()
            .unwrap_or_else(|| Tensor::zeros(n.value.rows(), n.value.cols()))
    }

    /// `A · B`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::MatMul(a, b), ng)
    }

    /// Elementwise `A + B`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x + y);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Add(a, b), ng)
    }

    /// `A + bias` with a 1×c bias broadcast across rows.
    pub fn add_row_broadcast(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[bias.0].value;
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        assert_eq!(av.cols(), bv.cols(), "bias width mismatch");
        let mut v = av.clone();
        for r in 0..v.rows() {
            for c in 0..v.cols() {
                v.set(r, c, v.get(r, c) + bv.get(0, c));
            }
        }
        let ng = self.needs(a) || self.needs(bias);
        self.push(v, Op::AddRowBroadcast(a, bias), ng)
    }

    /// Elementwise `A - B`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x - y);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Sub(a, b), ng)
    }

    /// Elementwise `A * B`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0]
            .value
            .zip(&self.nodes[b.0].value, |x, y| x * y);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::Mul(a, b), ng)
    }

    /// `A * k`.
    pub fn scale(&mut self, a: NodeId, k: f32) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| x * k);
        let ng = self.needs(a);
        self.push(v, Op::Scale(a, k), ng)
    }

    /// `A + k`.
    pub fn add_scalar(&mut self, a: NodeId, k: f32) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| x + k);
        let ng = self.needs(a);
        self.push(v, Op::AddScalar(a), ng)
    }

    /// `-A`.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        self.scale(a, -1.0)
    }

    /// `relu(A)`.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        let ng = self.needs(a);
        self.push(v, Op::Relu(a), ng)
    }

    /// `tanh(A)`.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(f32::tanh);
        let ng = self.needs(a);
        self.push(v, Op::Tanh(a), ng)
    }

    /// `exp(A)`.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.map(f32::exp);
        let ng = self.needs(a);
        self.push(v, Op::Exp(a), ng)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&mut self, a: NodeId) -> NodeId {
        let v = log_softmax_rows(&self.nodes[a.0].value);
        let ng = self.needs(a);
        self.push(v, Op::LogSoftmaxRows(a), ng)
    }

    /// `y[i] = A[i, idx[i]]` (r×1).
    ///
    /// # Panics
    /// Panics if `idx.len()` differs from the row count or any index is out
    /// of range.
    pub fn pick_per_row(&mut self, a: NodeId, idx: Vec<usize>) -> NodeId {
        let av = &self.nodes[a.0].value;
        assert_eq!(idx.len(), av.rows(), "pick_per_row index count mismatch");
        let data: Vec<f32> = idx.iter().enumerate().map(|(r, &c)| av.get(r, c)).collect();
        let v = Tensor::col_vector(data);
        let ng = self.needs(a);
        self.push(v, Op::PickPerRow(a, idx), ng)
    }

    /// Row sums (r×1).
    pub fn sum_rows(&mut self, a: NodeId) -> NodeId {
        let av = &self.nodes[a.0].value;
        let data: Vec<f32> = (0..av.rows()).map(|r| av.row(r).iter().sum()).collect();
        let v = Tensor::col_vector(data);
        let ng = self.needs(a);
        self.push(v, Op::SumRows(a), ng)
    }

    /// Mean of all elements (1×1).
    pub fn mean_all(&mut self, a: NodeId) -> NodeId {
        let av = &self.nodes[a.0].value;
        let v = Tensor::full(1, 1, av.sum() / av.len() as f32);
        let ng = self.needs(a);
        self.push(v, Op::MeanAll(a), ng)
    }

    /// Sum of all elements (1×1).
    pub fn sum_all(&mut self, a: NodeId) -> NodeId {
        let av = &self.nodes[a.0].value;
        let v = Tensor::full(1, 1, av.sum());
        let ng = self.needs(a);
        self.push(v, Op::SumAll(a), ng)
    }

    /// Elementwise `min(A, B)`.
    pub fn min_elem(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.zip(&self.nodes[b.0].value, f32::min);
        let ng = self.needs(a) || self.needs(b);
        self.push(v, Op::MinElem(a, b), ng)
    }

    /// `clamp(A, lo, hi)` with stop-gradient outside the open interval.
    pub fn clamp(&mut self, a: NodeId, lo: f32, hi: f32) -> NodeId {
        let v = self.nodes[a.0].value.map(|x| x.clamp(lo, hi));
        let ng = self.needs(a);
        self.push(v, Op::Clamp(a, lo, hi), ng)
    }

    /// Run reverse-mode differentiation from a 1×1 loss node, then flush
    /// accumulated gradients into any parameter leaves.
    ///
    /// # Panics
    /// Panics if `loss` is not 1×1.
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "loss must be scalar"
        );
        self.nodes[loss.0].grad = Some(Tensor::full(1, 1, 1.0));

        for i in (0..=loss.0).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let Some(grad_out) = self.nodes[i].grad.take() else {
                continue;
            };
            let op = self.nodes[i].op.clone();
            let value = std::mem::replace(&mut self.nodes[i].value, Tensor::zeros(0, 0));
            self.propagate(&op, &value, &grad_out);
            self.nodes[i].value = value;
            self.nodes[i].grad = Some(grad_out);
        }

        // Flush gradients into parameters.
        for node in &mut self.nodes {
            if let (Some(param), Some(grad)) = (&node.param, &node.grad) {
                param.accumulate_grad(grad);
            }
        }
    }

    fn accumulate(&mut self, id: NodeId, delta: Tensor) {
        if !self.nodes[id.0].needs_grad {
            return;
        }
        match &mut self.nodes[id.0].grad {
            Some(g) => g.add_assign(&delta),
            slot @ None => *slot = Some(delta),
        }
    }

    fn propagate(&mut self, op: &Op, out_value: &Tensor, grad_out: &Tensor) {
        match op {
            Op::Leaf => {}
            Op::MatMul(a, b) => {
                let (av, bv) = (self.nodes[a.0].value.clone(), self.nodes[b.0].value.clone());
                if self.needs(*a) {
                    // matmul_nt/matmul_tn skip the transpose copies and are
                    // bit-identical to the transpose-then-matmul originals.
                    self.accumulate(*a, grad_out.matmul_nt(&bv));
                }
                if self.needs(*b) {
                    self.accumulate(*b, av.matmul_tn(grad_out));
                }
            }
            Op::Add(a, b) => {
                self.accumulate(*a, grad_out.clone());
                self.accumulate(*b, grad_out.clone());
            }
            Op::AddRowBroadcast(a, bias) => {
                self.accumulate(*a, grad_out.clone());
                if self.needs(*bias) {
                    let mut col_sums = Tensor::zeros(1, grad_out.cols());
                    for r in 0..grad_out.rows() {
                        for c in 0..grad_out.cols() {
                            col_sums.set(0, c, col_sums.get(0, c) + grad_out.get(r, c));
                        }
                    }
                    self.accumulate(*bias, col_sums);
                }
            }
            Op::Sub(a, b) => {
                self.accumulate(*a, grad_out.clone());
                self.accumulate(*b, grad_out.map(|x| -x));
            }
            Op::Mul(a, b) => {
                let (av, bv) = (self.nodes[a.0].value.clone(), self.nodes[b.0].value.clone());
                if self.needs(*a) {
                    self.accumulate(*a, grad_out.zip(&bv, |g, y| g * y));
                }
                if self.needs(*b) {
                    self.accumulate(*b, grad_out.zip(&av, |g, x| g * x));
                }
            }
            Op::Scale(a, k) => self.accumulate(*a, grad_out.map(|g| g * k)),
            Op::AddScalar(a) => self.accumulate(*a, grad_out.clone()),
            Op::Relu(a) => {
                let av = self.nodes[a.0].value.clone();
                self.accumulate(*a, grad_out.zip(&av, |g, x| if x > 0.0 { g } else { 0.0 }));
            }
            Op::Tanh(a) => {
                self.accumulate(*a, grad_out.zip(out_value, |g, y| g * (1.0 - y * y)));
            }
            Op::Exp(a) => {
                self.accumulate(*a, grad_out.zip(out_value, |g, y| g * y));
            }
            Op::LogSoftmaxRows(a) => {
                // dA = dY - softmax(A) * rowsum(dY)
                let p = out_value.map(f32::exp);
                let mut delta = grad_out.clone();
                for r in 0..delta.rows() {
                    let row_sum: f32 = grad_out.row(r).iter().sum();
                    for c in 0..delta.cols() {
                        let v = delta.get(r, c) - p.get(r, c) * row_sum;
                        delta.set(r, c, v);
                    }
                }
                self.accumulate(*a, delta);
            }
            Op::PickPerRow(a, idx) => {
                let shape = self.nodes[a.0].value.shape();
                let mut delta = Tensor::zeros(shape.0, shape.1);
                for (r, &c) in idx.iter().enumerate() {
                    delta.set(r, c, grad_out.get(r, 0));
                }
                self.accumulate(*a, delta);
            }
            Op::SumRows(a) => {
                let shape = self.nodes[a.0].value.shape();
                let mut delta = Tensor::zeros(shape.0, shape.1);
                for r in 0..shape.0 {
                    let g = grad_out.get(r, 0);
                    for c in 0..shape.1 {
                        delta.set(r, c, g);
                    }
                }
                self.accumulate(*a, delta);
            }
            Op::MeanAll(a) => {
                let shape = self.nodes[a.0].value.shape();
                let g = grad_out.scalar() / (shape.0 * shape.1) as f32;
                self.accumulate(*a, Tensor::full(shape.0, shape.1, g));
            }
            Op::SumAll(a) => {
                let shape = self.nodes[a.0].value.shape();
                self.accumulate(*a, Tensor::full(shape.0, shape.1, grad_out.scalar()));
            }
            Op::MinElem(a, b) => {
                let (av, bv) = (self.nodes[a.0].value.clone(), self.nodes[b.0].value.clone());
                if self.needs(*a) {
                    let mut delta = grad_out.clone();
                    for (d, (x, y)) in delta
                        .data_mut()
                        .iter_mut()
                        .zip(av.data().iter().zip(bv.data()))
                    {
                        if x > y {
                            *d = 0.0;
                        }
                    }
                    self.accumulate(*a, delta);
                }
                if self.needs(*b) {
                    let mut delta = grad_out.clone();
                    for (d, (x, y)) in delta
                        .data_mut()
                        .iter_mut()
                        .zip(av.data().iter().zip(bv.data()))
                    {
                        if x <= y {
                            *d = 0.0;
                        }
                    }
                    self.accumulate(*b, delta);
                }
            }
            Op::Clamp(a, lo, hi) => {
                let av = self.nodes[a.0].value.clone();
                self.accumulate(
                    *a,
                    grad_out.zip(&av, |g, x| if x > *lo && x < *hi { g } else { 0.0 }),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numerically check d(loss)/d(param) for a builder function.
    fn grad_check(build: impl Fn(&mut Graph, NodeId) -> NodeId, input: Tensor, tol: f32) {
        let param = Param::new("x", input.clone());
        // Analytic gradient.
        let mut g = Graph::new();
        let x = g.param(&param);
        let loss = build(&mut g, x);
        g.backward(loss);
        let analytic = param.grad();

        // Numerical gradient.
        let eps = 1e-3f32;
        let (rows, cols) = input.shape();
        for r in 0..rows {
            for c in 0..cols {
                let mut plus = input.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = input.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let eval = |t: Tensor| {
                    let mut g = Graph::new();
                    let x = g.constant(t);
                    let loss = build(&mut g, x);
                    g.value(loss).scalar()
                };
                let numeric = (eval(plus) - eval(minus)) / (2.0 * eps);
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() < tol.max(0.05 * numeric.abs()),
                    "grad mismatch at ({r},{c}): analytic {a}, numeric {numeric}"
                );
            }
        }
    }

    fn rand_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::randn(rows, cols, 1.0, &mut rng)
    }

    #[test]
    fn grad_check_matmul_chain() {
        let w = rand_tensor(3, 2, 1);
        grad_check(
            move |g, x| {
                let w = g.constant(w.clone());
                let y = g.matmul(x, w);
                g.mean_all(y)
            },
            rand_tensor(2, 3, 2),
            1e-2,
        );
    }

    #[test]
    fn grad_check_relu_mlp() {
        let w1 = rand_tensor(4, 5, 3);
        let w2 = rand_tensor(5, 1, 4);
        grad_check(
            move |g, x| {
                let w1 = g.constant(w1.clone());
                let w2 = g.constant(w2.clone());
                let h = g.matmul(x, w1);
                let h = g.relu(h);
                let o = g.matmul(h, w2);
                g.mean_all(o)
            },
            rand_tensor(3, 4, 5),
            1e-2,
        );
    }

    #[test]
    fn grad_check_log_softmax_pick() {
        grad_check(
            |g, x| {
                let lp = g.log_softmax_rows(x);
                let picked = g.pick_per_row(lp, vec![0, 2]);
                g.mean_all(picked)
            },
            rand_tensor(2, 3, 6),
            1e-2,
        );
    }

    #[test]
    fn grad_check_entropy_expression() {
        grad_check(
            |g, x| {
                let lp = g.log_softmax_rows(x);
                let p = g.exp(lp);
                let plogp = g.mul(p, lp);
                let rows = g.sum_rows(plogp);
                let ent = g.neg(rows);
                g.mean_all(ent)
            },
            rand_tensor(2, 4, 7),
            1e-2,
        );
    }

    #[test]
    fn grad_check_tanh_exp_sub_mul() {
        grad_check(
            |g, x| {
                let t = g.tanh(x);
                let e = g.exp(t);
                let d = g.sub(e, t);
                let m = g.mul(d, d);
                g.mean_all(m)
            },
            rand_tensor(2, 3, 8),
            1e-2,
        );
    }

    #[test]
    fn grad_check_ppo_like_loss() {
        let adv = Tensor::col_vector(vec![1.0, -0.5, 2.0]);
        grad_check(
            move |g, x| {
                // x plays the role of (logp - logp_old), one per row.
                let lp = g.sum_rows(x);
                let ratio = g.exp(lp);
                let adv = g.constant(adv.clone());
                let s1 = g.mul(ratio, adv);
                let clipped = g.clamp(ratio, 0.8, 1.2);
                let s2 = g.mul(clipped, adv);
                let m = g.min_elem(s1, s2);
                let mean = g.mean_all(m);
                g.neg(mean)
            },
            Tensor::col_vector(vec![0.05, -0.1, 0.0]),
            1e-2,
        );
    }

    #[test]
    fn bias_broadcast_grad() {
        let bias = Param::new("b", Tensor::row_vector(vec![0.1, 0.2]));
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let b = g.param(&bias);
        let y = g.add_row_broadcast(x, b);
        let loss = g.sum_all(y);
        g.backward(loss);
        // d(sum)/d(bias_c) = number of rows.
        assert_eq!(bias.grad().data(), &[3.0, 3.0]);
    }

    #[test]
    fn param_grads_flush_and_accumulate() {
        let p = Param::new("w", Tensor::full(1, 1, 2.0));
        for _ in 0..2 {
            let mut g = Graph::new();
            let x = g.param(&p);
            let y = g.mul(x, x); // y = w^2, dy/dw = 2w = 4
            let loss = g.mean_all(y);
            g.backward(loss);
        }
        assert_eq!(p.grad().scalar(), 8.0); // two backward passes accumulate
    }

    #[test]
    fn constants_get_no_grad() {
        let mut g = Graph::new();
        let c = g.constant(Tensor::full(1, 1, 3.0));
        let y = g.mul(c, c);
        let loss = g.mean_all(y);
        g.backward(loss);
        assert_eq!(g.grad(c).scalar(), 0.0);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_requires_scalar() {
        let mut g = Graph::new();
        let c = g.constant(Tensor::zeros(2, 2));
        g.backward(c);
    }
}
