//! Network building blocks: linear layers and MLP trunks.

use crate::graph::{Graph, NodeId};
use crate::param::{Param, ParamSet};
use crate::tensor::{MatmulError, Tensor};
use rand::Rng;

/// In-place ReLU matching the graph op (`x.max(0.0)` per element).
fn relu_inplace(t: &mut Tensor) {
    for v in t.data_mut() {
        *v = v.max(0.0);
    }
}

/// Weight initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// He (Kaiming) normal — for layers followed by ReLU.
    He,
    /// Xavier (Glorot) normal — for linear output heads.
    Xavier,
}

/// A fully connected layer `y = x·W + b` with `W: in×out`, `b: 1×out`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix (in×out).
    pub weight: Param,
    /// Bias row vector (1×out).
    pub bias: Param,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Create a layer with the given initialization.
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        in_dim: usize,
        out_dim: usize,
        init: Init,
        rng: &mut R,
    ) -> Self {
        let std = match init {
            Init::He => (2.0 / in_dim as f32).sqrt(),
            Init::Xavier => (2.0 / (in_dim + out_dim) as f32).sqrt(),
        };
        Self {
            weight: Param::new(
                format!("{name}.weight"),
                Tensor::randn(in_dim, out_dim, std, rng),
            ),
            bias: Param::new(format!("{name}.bias"), Tensor::zeros(1, out_dim)),
            in_dim,
            out_dim,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Apply the layer inside a graph.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let w = g.param(&self.weight);
        let b = g.param(&self.bias);
        let xw = g.matmul(x, w);
        g.add_row_broadcast(xw, b)
    }

    /// Apply the layer to a raw `[B, in]` tensor outside any graph — the
    /// inference fast path. No tape and no parameter clones; bit-identical
    /// to [`Linear::forward`] because the matmul and bias-broadcast kernels
    /// accumulate in the same element order, and every row of the output
    /// depends only on the matching input row.
    pub fn forward_batch(&self, x: &Tensor) -> Result<Tensor, MatmulError> {
        let mut out = self.weight.with_value(|w| x.try_matmul(w))?;
        self.bias.with_value(|b| out.add_row_broadcast_assign(b));
        Ok(out)
    }

    /// Register parameters.
    pub fn register(&self, set: &mut ParamSet) {
        set.register(self.weight.clone());
        set.register(self.bias.clone());
    }

    /// Deep copy with independent parameter storage.
    pub fn deep_clone(&self) -> Linear {
        Linear {
            weight: self.weight.deep_clone(),
            bias: self.bias.deep_clone(),
            in_dim: self.in_dim,
            out_dim: self.out_dim,
        }
    }
}

/// A stack of [`Linear`] layers with ReLU activations between them
/// ("several dense hidden layers with a ReLU activation", paper §5).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, e.g. `[in, h1, h2]` yields
    /// two ReLU-activated hidden layers; the output is the last hidden
    /// representation (heads are attached separately).
    pub fn new<R: Rng + ?Sized>(name: &str, dims: &[usize], rng: &mut R) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and one layer");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(&format!("{name}.{i}"), w[0], w[1], Init::He, rng))
            .collect();
        Self { layers }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Apply all layers, ReLU after each.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let mut h = x;
        for layer in &self.layers {
            h = layer.forward(g, h);
            h = g.relu(h);
        }
        h
    }

    /// Graph-free batched forward: every layer followed by ReLU, row for
    /// row bit-identical to [`Mlp::forward`] on the same input.
    pub fn forward_batch(&self, x: &Tensor) -> Result<Tensor, MatmulError> {
        let mut h = self.layers[0].forward_batch(x)?;
        relu_inplace(&mut h);
        for layer in &self.layers[1..] {
            h = layer.forward_batch(&h)?;
            relu_inplace(&mut h);
        }
        Ok(h)
    }

    /// Register parameters.
    pub fn register(&self, set: &mut ParamSet) {
        for l in &self.layers {
            l.register(set);
        }
    }

    /// Deep copy with independent parameter storage.
    pub fn deep_clone(&self) -> Mlp {
        Mlp {
            layers: self.layers.iter().map(Linear::deep_clone).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new("l", 4, 3, Init::He, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Tensor::zeros(5, 4));
        let y = l.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (5, 3));
    }

    #[test]
    fn mlp_forward_and_param_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new("trunk", &[6, 8, 4], &mut rng);
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 4);
        let mut set = ParamSet::new();
        mlp.register(&mut set);
        assert_eq!(set.n_elements(), 6 * 8 + 8 + 8 * 4 + 4);

        let mut g = Graph::new();
        let x = g.constant(Tensor::zeros(2, 6));
        let y = mlp.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (2, 4));
        // ReLU output is non-negative.
        assert!(g.value(y).data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn forward_batch_reports_shape_mismatch() {
        let mut rng = StdRng::seed_from_u64(9);
        let l = Linear::new("l", 4, 3, Init::He, &mut rng);
        let err = l.forward_batch(&Tensor::zeros(5, 7)).unwrap_err();
        assert_eq!(err.left, (5, 7));
        assert_eq!(err.right, (4, 3));
        let mlp = Mlp::new("m", &[6, 8, 4], &mut rng);
        assert!(mlp.forward_batch(&Tensor::zeros(2, 5)).is_err());
        assert_eq!(
            mlp.forward_batch(&Tensor::zeros(2, 6)).unwrap().shape(),
            (2, 4)
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        /// Batched forward over `[B, in]` is bit-identical, row for row, to
        /// B serial one-row forwards and to the graph path — the property
        /// that lets batching join the determinism contract. Runs with the
        /// `simd` feature too, where the AVX kernel must uphold it.
        #[test]
        fn batched_and_serial_mlp_forward_agree_bitwise(
            seed in 0u64..1000,
            batch in 1usize..9,
            in_dim in 1usize..24,
            hidden in proptest::prelude::prop::collection::vec(1usize..24, 1..3),
        ) {
            use proptest::prelude::*;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut dims = vec![in_dim];
            dims.extend(hidden);
            let mlp = Mlp::new("t", &dims, &mut rng);
            let x = Tensor::randn(batch, in_dim, 1.0, &mut rng);
            let batched = mlp.forward_batch(&x).unwrap();

            let mut g = Graph::new();
            let node = g.constant(x.clone());
            let out_node = mlp.forward(&mut g, node);
            let graphed = g.value(out_node).clone();
            prop_assert_eq!(batched.data(), graphed.data());

            for r in 0..batch {
                let row = Tensor::row_vector(x.row(r).to_vec());
                let serial = mlp.forward_batch(&row).unwrap();
                prop_assert_eq!(serial.data(), batched.row(r), "row {} diverged", r);
            }
        }
    }

    #[test]
    fn deep_clone_is_independent() {
        let mut rng = StdRng::seed_from_u64(2);
        let l = Linear::new("l", 2, 2, Init::Xavier, &mut rng);
        let c = l.deep_clone();
        l.weight.set_value(Tensor::zeros(2, 2));
        assert_ne!(c.weight.value().data(), l.weight.value().data());
    }

    #[test]
    fn training_reduces_regression_loss() {
        // Sanity: an MLP + head trained by plain gradient descent fits y = x.
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new("t", &[1, 16], &mut rng);
        let head = Linear::new("h", 16, 1, Init::Xavier, &mut rng);
        let mut set = ParamSet::new();
        mlp.register(&mut set);
        head.register(&mut set);

        let xs = Tensor::col_vector(vec![-1.0, -0.5, 0.0, 0.5, 1.0]);
        let ys = xs.clone();
        let loss_value = |set: &ParamSet| -> f32 {
            let _ = set;
            let mut g = Graph::new();
            let x = g.constant(xs.clone());
            let t = g.constant(ys.clone());
            let h = mlp.forward(&mut g, x);
            let o = head.forward(&mut g, h);
            let d = g.sub(o, t);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            g.value(loss).scalar()
        };
        let initial = loss_value(&set);
        for _ in 0..200 {
            set.zero_grads();
            let mut g = Graph::new();
            let x = g.constant(xs.clone());
            let t = g.constant(ys.clone());
            let h = mlp.forward(&mut g, x);
            let o = head.forward(&mut g, h);
            let d = g.sub(o, t);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            g.backward(loss);
            for p in set.params() {
                p.update(|v, grad| {
                    for (v, g) in v.data_mut().iter_mut().zip(grad.data()) {
                        *v -= 0.05 * g;
                    }
                });
            }
        }
        let fin = loss_value(&set);
        assert!(
            fin < initial * 0.1,
            "loss did not decrease: {initial} -> {fin}"
        );
        assert!(fin < 0.01, "final loss too high: {fin}");
    }
}
