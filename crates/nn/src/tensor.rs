//! Dense 2-D `f32` tensors (row-major) with the handful of BLAS-like
//! operations the policy networks need.
//!
//! ATENA's networks are small MLPs (observation ≈ 150 dims, two hidden
//! layers), so a straightforward row-major implementation is more than fast
//! enough and keeps the crate dependency-free.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A row-major matrix of `f32`. Vectors are 1×n or n×1 tensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

/// Inner-dimension mismatch reported by [`Tensor::try_matmul`].
///
/// Surfacing this as a value (instead of the historical panic) lets bundle
/// loading and the batched forward path validate shapes up front, so a
/// corrupt checkpoint turns into an error response rather than a dead
/// worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatmulError {
    /// Shape of the left operand.
    pub left: (usize, usize),
    /// Shape of the right operand.
    pub right: (usize, usize),
}

impl std::fmt::Display for MatmulError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matmul dimension mismatch: {}x{} \u{b7} {}x{}",
            self.left.0, self.left.1, self.right.0, self.right.1
        )
    }
}

impl std::error::Error for MatmulError {}

/// Row-block size for the blocked matmul kernel. Each block of output rows
/// streams every row of `b` exactly once, so `b` traffics through cache
/// `MM_ROW_BLOCK`× less often than in a plain i-k-j loop; per output
/// element the k-index still ascends, keeping results bit-identical.
const MM_ROW_BLOCK: usize = 4;

/// Blocked `out += a · b` kernel shared by [`Tensor::try_matmul`].
///
/// Loop order is (row-block, k, i): within a block of output rows, `b`'s
/// row `k` is reused across all block rows while per output element the
/// adds still happen in ascending-k order — the exact accumulation sequence
/// (and `a == 0.0` skip) of the reference i-k-j loop, so the blocked kernel
/// is bit-identical to it.
fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let n = b.cols;
    let mut i0 = 0;
    while i0 < a.rows {
        let i1 = (i0 + MM_ROW_BLOCK).min(a.rows);
        for k in 0..a.cols {
            let b_row = b.row(k);
            for i in i0..i1 {
                let av = a.data[i * a.cols + k];
                if av == 0.0 {
                    continue;
                }
                axpy(av, b_row, &mut out.data[i * n..(i + 1) * n]);
            }
        }
        i0 = i1;
    }
}

/// `y[j] += a * x[j]` over the shorter of the two slices.
///
/// With the `simd` feature on x86-64 this takes an AVX mul+add path over
/// column lanes when the CPU supports it. No FMA: element `j`'s result is
/// one IEEE-754 multiply and one add in both paths, so the vector path is
/// bit-identical to the scalar loop at any vector width.
#[inline]
fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support was just verified at runtime.
            unsafe { axpy_avx(a, x, y) };
            return;
        }
    }
    axpy_scalar(a, x, y);
}

#[inline]
fn axpy_scalar(a: f32, x: &[f32], y: &mut [f32]) {
    for (yj, &xj) in y.iter_mut().zip(x) {
        *yj += a * xj;
    }
}

// SAFETY: callers must verify AVX support at runtime before invoking (the
// `axpy` dispatcher does); all loads/stores below stay within `x`/`y` bounds.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx")]
unsafe fn axpy_avx(a: f32, x: &[f32], y: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = x.len().min(y.len());
    let av = _mm256_set1_ps(a);
    let mut j = 0;
    while j + 8 <= n {
        let xv = _mm256_loadu_ps(x.as_ptr().add(j));
        let yv = _mm256_loadu_ps(y.as_ptr().add(j));
        // Separate mul then add (never _mm256_fmadd_ps): fused rounding
        // would diverge from the scalar kernel at the last bit.
        let sum = _mm256_add_ps(yv, _mm256_mul_ps(av, xv));
        _mm256_storeu_ps(y.as_mut_ptr().add(j), sum);
        j += 8;
    }
    axpy_scalar(a, &x[j..n], &mut y[j..n]);
}

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor data length mismatch");
        Self { data, rows, cols }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self {
            data,
            rows: 1,
            cols,
        }
    }

    /// An n×1 column vector.
    pub fn col_vector(data: Vec<f32>) -> Self {
        let rows = data.len();
        Self {
            data,
            rows,
            cols: 1,
        }
    }

    /// Gaussian-initialized tensor with the given standard deviation.
    pub fn randn<R: Rng + ?Sized>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Self {
        // Box-Muller; avoids needing rand_distr.
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < rows * cols {
                data.push(r * theta.sin() * std);
            }
        }
        Self { data, rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`, or a typed error on inner-dimension
    /// mismatch.
    pub fn try_matmul(&self, other: &Tensor) -> Result<Tensor, MatmulError> {
        if self.cols != other.rows {
            return Err(MatmulError {
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Tensor::zeros(self.rows, other.cols);
        matmul_into(self, other, &mut out);
        Ok(out)
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch; [`Tensor::try_matmul`] is the
    /// non-panicking variant.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        match self.try_matmul(other) {
            Ok(out) => out,
            Err(e) => panic!("{e}"),
        }
    }

    /// `self · otherᵀ` without materializing the transpose (the autodiff
    /// backward pass uses this for `grad_a = grad_out · Wᵀ`). Per output
    /// element the k-index ascends and zero left operands are skipped, the
    /// exact accumulation of `self.matmul(&other.transpose())` — the two
    /// are bit-identical.
    ///
    /// # Panics
    /// Panics when `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_nt dimension mismatch");
        let mut out = Tensor::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(other.row(j)) {
                    if a == 0.0 {
                        continue;
                    }
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose (backward pass:
    /// `grad_w = xᵀ · grad_out`). The row index of `self` plays the inner-k
    /// role and ascends per output element, with the same zero skip —
    /// bit-identical to `self.transpose().matmul(other)`.
    ///
    /// # Panics
    /// Panics when `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "matmul_tn dimension mismatch");
        let mut out = Tensor::zeros(self.cols, other.cols);
        let n = other.cols;
        for r in 0..self.rows {
            let b_row = other.row(r);
            for i in 0..self.cols {
                let a = self.data[r * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                axpy(a, b_row, &mut out.data[i * n..(i + 1) * n]);
            }
        }
        out
    }

    /// Add a `1 × cols` bias row to every row in place — the tensor-path
    /// twin of the graph's `add_row_broadcast` op (each element computes
    /// `x + bias` in that operand order).
    ///
    /// # Panics
    /// Panics unless `bias` is `1 × self.cols()`.
    pub fn add_row_broadcast_assign(&mut self, bias: &Tensor) {
        assert_eq!(bias.shape(), (1, self.cols), "row-broadcast shape mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, &b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Elementwise binary combination into a new tensor.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Sum of squares of all elements.
    pub fn sum_squares(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Set all elements to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Scalar value of a 1×1 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not 1×1.
    pub fn scalar(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar() on non-1x1 tensor");
        self.data[0]
    }
}

/// Numerically stable row-wise log-softmax.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
        for (c, &v) in row.iter().enumerate() {
            out.set(r, c, v - lse);
        }
    }
    out
}

/// Row-wise softmax (probabilities).
pub fn softmax_rows(x: &Tensor) -> Tensor {
    log_softmax_rows(x).map(f32::exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn log_softmax_rows_sums_to_one() {
        let x = Tensor::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1000.]);
        let p = softmax_rows(&x);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
        // Huge logits stay finite (stability check).
        assert!(p.data().iter().all(|v| v.is_finite()));
        assert!((p.get(1, 2) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn randn_has_roughly_right_std() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(100, 100, 0.5, &mut rng);
        let mean = t.sum() / t.len() as f32;
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn map_zip_sum() {
        let a = Tensor::from_vec(1, 3, vec![1., -2., 3.]);
        let b = a.map(f32::abs);
        assert_eq!(b.data(), &[1., 2., 3.]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.data(), &[2., 0., 6.]);
        assert_eq!(c.sum(), 8.0);
        assert_eq!(a.sum_squares(), 14.0);
    }

    /// The pre-blocking i-k-j reference kernel, kept verbatim as the
    /// bit-exactness oracle for the blocked/axpy kernel.
    fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.cols(), b.rows());
        let mut out = Tensor::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            let a_row = a.row(i).to_vec();
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = b.row(k).to_vec();
                for j in 0..b.cols() {
                    let v = out.get(i, j) + av * b_row[j];
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        // Shapes straddling the row-block size and the AVX lane width,
        // with injected exact zeros to exercise the skip path.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (9, 17, 33), (16, 150, 64)] {
            let mut a = Tensor::randn(m, k, 1.0, &mut rng);
            let b = Tensor::randn(k, n, 1.0, &mut rng);
            for i in 0..a.len() / 3 {
                a.data_mut()[i * 3] = 0.0;
            }
            let fast = a.matmul(&b);
            let slow = matmul_reference(&a, &b);
            assert_eq!(fast.data(), slow.data(), "shape ({m},{k},{n}) diverged");
        }
    }

    #[test]
    fn transposed_kernels_match_materialized_transpose() {
        let mut rng = StdRng::seed_from_u64(12);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (7, 13, 5), (8, 32, 9)] {
            let a = Tensor::randn(m, k, 1.0, &mut rng);
            let b = Tensor::randn(n, k, 1.0, &mut rng);
            assert_eq!(a.matmul_nt(&b).data(), a.matmul(&b.transpose()).data());
            let c = Tensor::randn(k, m, 1.0, &mut rng);
            let d = Tensor::randn(k, n, 1.0, &mut rng);
            assert_eq!(c.matmul_tn(&d).data(), c.transpose().matmul(&d).data());
        }
    }

    #[test]
    fn try_matmul_reports_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 2);
        let err = a.try_matmul(&b).unwrap_err();
        assert_eq!(err.left, (2, 3));
        assert_eq!(err.right, (2, 2));
        assert!(err.to_string().contains("matmul dimension mismatch"));
        assert!(a.try_matmul(&Tensor::zeros(3, 4)).is_ok());
    }

    #[test]
    fn add_row_broadcast_assign_matches_per_element_add() {
        let mut x = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::row_vector(vec![0.5, -1.0, 2.0]);
        x.add_row_broadcast_assign(&b);
        assert_eq!(x.data(), &[1.5, 1.0, 5.0, 4.5, 4.0, 8.0]);
    }

    #[test]
    fn vectors_and_scalar() {
        let r = Tensor::row_vector(vec![1., 2.]);
        assert_eq!(r.shape(), (1, 2));
        let c = Tensor::col_vector(vec![1., 2.]);
        assert_eq!(c.shape(), (2, 1));
        let s = Tensor::full(1, 1, 5.0);
        assert_eq!(s.scalar(), 5.0);
    }
}
