//! Dense 2-D `f32` tensors (row-major) with the handful of BLAS-like
//! operations the policy networks need.
//!
//! ATENA's networks are small MLPs (observation ≈ 150 dims, two hidden
//! layers), so a straightforward row-major implementation is more than fast
//! enough and keeps the crate dependency-free.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A row-major matrix of `f32`. Vectors are 1×n or n×1 tensors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Build from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor data length mismatch");
        Self { data, rows, cols }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self {
            data,
            rows: 1,
            cols,
        }
    }

    /// An n×1 column vector.
    pub fn col_vector(data: Vec<f32>) -> Self {
        let rows = data.len();
        Self {
            data,
            rows,
            cols: 1,
        }
    }

    /// Gaussian-initialized tensor with the given standard deviation.
    pub fn randn<R: Rng + ?Sized>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Self {
        // Box-Muller; avoids needing rand_distr.
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < rows * cols {
                data.push(r * theta.sin() * std);
            }
        }
        Self { data, rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Tensor::zeros(self.rows, other.cols);
        // i-k-j loop order: streams through `other` rows for cache locality.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise in-place addition.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&v| f(v)).collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Elementwise binary combination into a new tensor.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "zip shape mismatch");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Sum of squares of all elements.
    pub fn sum_squares(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }

    /// Set all elements to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Scalar value of a 1×1 tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not 1×1.
    pub fn scalar(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "scalar() on non-1x1 tensor");
        self.data[0]
    }
}

/// Numerically stable row-wise log-softmax.
pub fn log_softmax_rows(x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(x.rows(), x.cols());
    for r in 0..x.rows() {
        let row = x.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
        for (c, &v) in row.iter().enumerate() {
            out.set(r, c, v - lse);
        }
    }
    out
}

/// Row-wise softmax (probabilities).
pub fn softmax_rows(x: &Tensor) -> Tensor {
    log_softmax_rows(x).map(f32::exp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn log_softmax_rows_sums_to_one() {
        let x = Tensor::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1000.]);
        let p = softmax_rows(&x);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
        // Huge logits stay finite (stability check).
        assert!(p.data().iter().all(|v| v.is_finite()));
        assert!((p.get(1, 2) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn randn_has_roughly_right_std() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(100, 100, 0.5, &mut rng);
        let mean = t.sum() / t.len() as f32;
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn map_zip_sum() {
        let a = Tensor::from_vec(1, 3, vec![1., -2., 3.]);
        let b = a.map(f32::abs);
        assert_eq!(b.data(), &[1., 2., 3.]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.data(), &[2., 0., 6.]);
        assert_eq!(c.sum(), 8.0);
        assert_eq!(a.sum_squares(), 14.0);
    }

    #[test]
    fn vectors_and_scalar() {
        let r = Tensor::row_vector(vec![1., 2.]);
        assert_eq!(r.shape(), (1, 2));
        let c = Tensor::col_vector(vec![1., 2.]);
        assert_eq!(c.shape(), (2, 1));
        let s = Tensor::full(1, 1, 5.0);
        assert_eq!(s.scalar(), 5.0);
    }
}
