//! First-order optimizers: SGD and Adam.

use crate::param::ParamSet;
use crate::tensor::Tensor;

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Create an SGD optimizer for the given parameters.
    pub fn new(params: &ParamSet, lr: f32, momentum: f32) -> Self {
        let velocity = params
            .params()
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                Tensor::zeros(r, c)
            })
            .collect();
        Self {
            lr,
            momentum,
            velocity,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Set the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update step from the accumulated gradients.
    pub fn step(&mut self, params: &ParamSet) {
        for (p, v) in params.params().iter().zip(self.velocity.iter_mut()) {
            let lr = self.lr;
            let momentum = self.momentum;
            p.update(|value, grad| {
                for ((v, g), x) in v
                    .data_mut()
                    .iter_mut()
                    .zip(grad.data())
                    .zip(value.data_mut())
                {
                    *v = momentum * *v + g;
                    *x -= lr * *v;
                }
            });
        }
    }
}

/// Adam optimizer (Kingma & Ba), the default for the policy networks.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Create an Adam optimizer with standard betas (0.9 / 0.999).
    pub fn new(params: &ParamSet, lr: f32) -> Self {
        Self::with_betas(params, lr, 0.9, 0.999, 1e-8)
    }

    /// Create with explicit hyperparameters.
    pub fn with_betas(params: &ParamSet, lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        let zeros = |p: &crate::param::Param| {
            let (r, c) = p.shape();
            Tensor::zeros(r, c)
        };
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m: params.params().iter().map(zeros).collect(),
            v: params.params().iter().map(zeros).collect(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Set the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one update step from the accumulated gradients.
    pub fn step(&mut self, params: &ParamSet) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        for ((p, m), v) in params
            .params()
            .iter()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            p.update(|value, grad| {
                for (((x, g), m), v) in value
                    .data_mut()
                    .iter_mut()
                    .zip(grad.data())
                    .zip(m.data_mut())
                    .zip(v.data_mut())
                {
                    *m = b1 * *m + (1.0 - b1) * g;
                    *v = b2 * *v + (1.0 - b2) * g * g;
                    let m_hat = *m / bc1;
                    let v_hat = *v / bc2;
                    *x -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::param::Param;

    /// Minimize f(w) = (w - 3)^2 and check convergence to w = 3.
    fn quadratic_descent(step: impl Fn(&ParamSet)) -> f32 {
        let p = Param::new("w", Tensor::full(1, 1, 0.0));
        let mut set = ParamSet::new();
        set.register(p.clone());
        for _ in 0..300 {
            set.zero_grads();
            let mut g = Graph::new();
            let w = g.param(&p);
            let c = g.constant(Tensor::full(1, 1, 3.0));
            let d = g.sub(w, c);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            g.backward(loss);
            step(&set);
        }
        p.value().scalar()
    }

    #[test]
    fn sgd_converges() {
        let p = Param::new("w", Tensor::full(1, 1, 0.0));
        let mut set = ParamSet::new();
        set.register(p.clone());
        let mut opt = Sgd::new(&set, 0.1, 0.0);
        let w = quadratic_descent_with(&p, &set, |s| opt.step(s));
        assert!((w - 3.0).abs() < 1e-3, "sgd converged to {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let p = Param::new("w", Tensor::full(1, 1, 0.0));
        let mut set = ParamSet::new();
        set.register(p.clone());
        let mut opt = Sgd::new(&set, 0.02, 0.9);
        let w = quadratic_descent_with(&p, &set, |s| opt.step(s));
        assert!((w - 3.0).abs() < 1e-2, "sgd+momentum converged to {w}");
    }

    #[test]
    fn adam_converges() {
        let p = Param::new("w", Tensor::full(1, 1, 0.0));
        let mut set = ParamSet::new();
        set.register(p.clone());
        let mut opt = Adam::new(&set, 0.1);
        let w = quadratic_descent_with(&p, &set, |s| opt.step(s));
        assert!((w - 3.0).abs() < 1e-2, "adam converged to {w}");
    }

    fn quadratic_descent_with(p: &Param, set: &ParamSet, mut step: impl FnMut(&ParamSet)) -> f32 {
        for _ in 0..300 {
            set.zero_grads();
            let mut g = Graph::new();
            let w = g.param(p);
            let c = g.constant(Tensor::full(1, 1, 3.0));
            let d = g.sub(w, c);
            let sq = g.mul(d, d);
            let loss = g.mean_all(sq);
            g.backward(loss);
            step(set);
        }
        p.value().scalar()
    }

    #[test]
    fn lr_setters() {
        let set = ParamSet::new();
        let mut sgd = Sgd::new(&set, 0.1, 0.0);
        sgd.set_lr(0.5);
        assert_eq!(sgd.lr(), 0.5);
        let mut adam = Adam::new(&set, 0.1);
        adam.set_lr(0.01);
        assert_eq!(adam.lr(), 0.01);
    }

    // Silence dead-code path: keep the standalone helper exercised.
    #[test]
    fn quadratic_descent_noop_does_not_move() {
        let w = quadratic_descent(|_| {});
        assert_eq!(w, 0.0);
    }
}
