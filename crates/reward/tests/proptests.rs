//! Property-based tests for the reward signal: totals must stay finite and
//! bounded, coherency must stay a probability, and the label model must be
//! well-behaved on arbitrary vote matrices.

use atena_dataframe::{AttrRole, DataFrame};
use atena_env::{EdaEnv, EnvConfig, RewardModel};
use atena_reward::{random_action, CoherencyConfig, CompoundReward, LabelModel, Vote};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn base(n: usize) -> DataFrame {
    DataFrame::builder()
        .str(
            "cat",
            AttrRole::Categorical,
            (0..n).map(|i| Some(["x", "y", "z"][i % 3])),
        )
        .int(
            "num",
            AttrRole::Numeric,
            (0..n).map(|i| Some((i as i64 * 13) % 31)),
        )
        .int("id", AttrRole::Identifier, (0..n).map(|i| Some(i as i64)))
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rewards stay finite and bounded for arbitrary random-policy episodes
    /// across seeds; the compound total never exceeds the sum of the
    /// (clamped) weighted component maxima.
    #[test]
    fn rewards_finite_and_bounded(seed in 0u64..500, rows in 20usize..120) {
        let mut env = EdaEnv::new(
            base(rows),
            EnvConfig { episode_len: 8, n_bins: 5, history_window: 3, seed },
        );
        let mut reward = CompoundReward::new(CoherencyConfig::with_focal_attrs(vec![
            "cat".into(),
        ]));
        reward.fit(&mut env, 60, seed);
        let w = reward.weights();
        let bound = w.interestingness + w.diversity + w.coherency + 0.01;
        // The centered coherency term can reach -w_c; invalid ops earn -1.
        let floor = -(w.coherency.max(1.0)) - 0.01;

        env.reset_with_seed(seed ^ 0xbeef);
        let mut rng = StdRng::seed_from_u64(seed);
        while !env.done() {
            let action = random_action(&env, &mut rng);
            let op = env.resolve(&action);
            let preview = env.preview(&op);
            let r = {
                let info = env.step_info(&preview);
                reward.score(&info)
            };
            prop_assert!(r.total.is_finite());
            prop_assert!(r.total <= bound, "total {} exceeds bound {}", r.total, bound);
            prop_assert!(r.total >= floor, "total {} below floor {}", r.total, floor);
            // Components have consistent signs.
            prop_assert!(r.interestingness >= 0.0);
            prop_assert!(r.diversity >= 0.0);
            env.commit(preview);
        }
    }

    /// Rewards are bit-identical with the display cache attached at any
    /// capacity — the cache memoizes materialization, and reward scoring is
    /// a pure function of the (bit-identical) previewed displays. Any
    /// divergence here is a cache-soundness bug (KNOWN_FAILURES.md), never
    /// a tolerance to widen.
    #[test]
    fn rewards_are_cache_invariant(seed in 0u64..200) {
        let run = |cache: Option<std::sync::Arc<atena_env::DisplayCache>>| -> Vec<u64> {
            let mut env = EdaEnv::new(
                base(70),
                EnvConfig { episode_len: 8, n_bins: 5, history_window: 3, seed },
            );
            if let Some(cache) = cache {
                env = env.with_display_cache(cache);
            }
            let mut reward = CompoundReward::new(CoherencyConfig::with_focal_attrs(vec![
                "cat".into(),
            ]));
            reward.fit(&mut env, 40, seed);
            env.reset_with_seed(seed ^ 0x5eed);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut totals = Vec::new();
            while !env.done() {
                let action = random_action(&env, &mut rng);
                let op = env.resolve(&action);
                let preview = env.preview(&op);
                let r = {
                    let info = env.step_info(&preview);
                    reward.score(&info)
                };
                totals.push(r.total.to_bits());
                env.commit(preview);
            }
            totals
        };
        let uncached = run(None);
        for capacity in [1usize, 512] {
            let cache = std::sync::Arc::new(atena_env::DisplayCache::new(capacity));
            prop_assert_eq!(&run(Some(cache)), &uncached, "capacity {} diverged", capacity);
        }
    }

    /// The label-model posterior is always a probability, for any vote row.
    #[test]
    fn posterior_is_probability(
        votes in prop::collection::vec(0u8..3, 1..12),
    ) {
        let model = LabelModel::untrained(votes.len());
        let row: Vec<Vote> = votes
            .iter()
            .map(|v| match v {
                0 => Vote::Abstain,
                1 => Vote::Coherent,
                _ => Vote::Incoherent,
            })
            .collect();
        let p = model.posterior_coherent(&row);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(p.is_finite());
    }

    /// EM fitting never produces NaNs or out-of-range accuracies, for any
    /// unlabeled vote matrix (including degenerate all-abstain ones).
    #[test]
    fn em_fit_is_robust(
        matrix in prop::collection::vec(prop::collection::vec(0u8..3, 4), 0..60),
    ) {
        let rows: Vec<Vec<Vote>> = matrix
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| match v {
                        0 => Vote::Abstain,
                        1 => Vote::Coherent,
                        _ => Vote::Incoherent,
                    })
                    .collect()
            })
            .collect();
        let model = LabelModel::fit(&rows);
        for &a in model.accuracies() {
            prop_assert!(a.is_finite());
            prop_assert!((LabelModel::ACC_RANGE.0..=LabelModel::ACC_RANGE.1).contains(&a));
        }
        prop_assert!((0.0..=1.0).contains(&model.prior()));
    }

    /// Adding coherent votes never decreases the posterior; adding
    /// incoherent votes never increases it (monotonicity).
    #[test]
    fn posterior_is_monotone(n_extra in 0usize..6) {
        let model = LabelModel::untrained(8);
        let mut row = vec![Vote::Abstain; 8];
        let base_p = model.posterior_coherent(&row);
        for slot in row.iter_mut().take(n_extra) {
            *slot = Vote::Coherent;
        }
        let p_pos = model.posterior_coherent(&row);
        prop_assert!(p_pos >= base_p - 1e-12);

        let mut row = vec![Vote::Abstain; 8];
        for slot in row.iter_mut().take(n_extra) {
            *slot = Vote::Incoherent;
        }
        let p_neg = model.posterior_coherent(&row);
        prop_assert!(p_neg <= base_p + 1e-12);
    }
}
