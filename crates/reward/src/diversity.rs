//! Diversity reward (paper §4.2): encourage actions that lead to displays
//! unlike anything seen earlier in the session, measured as the minimal
//! Euclidean distance between the new display vector and all previous ones.

use atena_env::{DisplayVector, StepInfo};
use serde::{Deserialize, Serialize};

/// Configuration of the diversity signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiversityConfig {
    /// Slope of the `1 - exp(-k·d)` squashing applied to the normalized
    /// minimal distance; larger `k` saturates faster.
    pub saturation: f64,
}

impl Default for DiversityConfig {
    fn default() -> Self {
        Self { saturation: 6.0 }
    }
}

/// Minimal Euclidean distance between `vector` and every element of
/// `earlier`, normalized by `sqrt(dim)` so datasets of different widths are
/// comparable. Returns 0 when `earlier` is empty.
pub fn min_distance(vector: &DisplayVector, earlier: &[&DisplayVector]) -> f64 {
    let dim = vector.dim().max(1) as f64;
    earlier
        .iter()
        .map(|e| vector.euclidean_distance(e) / dim.sqrt())
        .fold(f64::INFINITY, f64::min)
        .min(f64::MAX)
        .min(if earlier.is_empty() {
            0.0
        } else {
            f64::INFINITY
        })
}

/// Diversity score of a step in `[0, 1)`: squashed minimal distance to all
/// previously seen display vectors. Operations that fail or revisit an old
/// display earn zero (their distance to that display is zero).
pub fn step_diversity(cfg: &DiversityConfig, info: &StepInfo<'_>) -> f64 {
    if !info.outcome.is_applied() {
        return 0.0;
    }
    if info.earlier_vectors.is_empty() {
        return 0.0;
    }
    let d = min_distance(&info.new_display.vector, &info.earlier_vectors);
    1.0 - (-cfg.saturation * d).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::{AttrRole, CmpOp, DataFrame, Predicate};
    use atena_env::{Display, DisplaySpec};

    fn base() -> DataFrame {
        DataFrame::builder()
            .int("x", AttrRole::Numeric, (0..50).map(|i| Some(i % 10)))
            .build()
            .unwrap()
    }

    #[test]
    fn revisiting_scores_zero_distance() {
        let b = base();
        let root = Display::root(&b);
        let d = min_distance(&root.vector, &[&root.vector]);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn new_view_scores_positive() {
        let b = base();
        let root = Display::root(&b);
        let filtered = Display::materialize(
            &b,
            DisplaySpec::default().with_predicate(Predicate::new("x", CmpOp::Lt, 3i64)),
        )
        .unwrap();
        let d = min_distance(&filtered.vector, &[&root.vector]);
        assert!(d > 0.0);
        let cfg = DiversityConfig::default();
        let squashed = 1.0 - (-cfg.saturation * d).exp();
        assert!(squashed > 0.0 && squashed < 1.0);
    }

    #[test]
    fn min_over_history() {
        let b = base();
        let root = Display::root(&b);
        let filtered = Display::materialize(
            &b,
            DisplaySpec::default().with_predicate(Predicate::new("x", CmpOp::Lt, 3i64)),
        )
        .unwrap();
        // With the identical display in history the min is zero even though
        // the root is far away.
        let d = min_distance(&filtered.vector, &[&root.vector, &filtered.vector]);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn empty_history_is_zero() {
        let b = base();
        let root = Display::root(&b);
        assert_eq!(min_distance(&root.vector, &[]), 0.0);
    }
}
