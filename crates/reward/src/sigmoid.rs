//! Normalized sigmoid utilities (paper §4.2 cites [26]): squashing functions
//! with a predefined center and width, used by the interestingness measures.

use serde::{Deserialize, Serialize};

/// A logistic sigmoid `h(x) = 1 / (1 + exp(-(x - center)/width))`.
///
/// A positive `width` gives an increasing sigmoid, a negative `width` a
/// decreasing one. `|width|` controls how sharp the transition is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedSigmoid {
    /// Input value mapped to 0.5.
    pub center: f64,
    /// Transition width; sign selects direction.
    pub width: f64,
}

impl NormalizedSigmoid {
    /// Increasing sigmoid.
    pub fn increasing(center: f64, width: f64) -> Self {
        Self {
            center,
            width: width.abs(),
        }
    }

    /// Decreasing sigmoid.
    pub fn decreasing(center: f64, width: f64) -> Self {
        Self {
            center,
            width: -width.abs(),
        }
    }

    /// Evaluate at `x`; always in (0, 1).
    pub fn eval(&self, x: f64) -> f64 {
        let z = (x - self.center) / self.width;
        1.0 / (1.0 + (-z).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increasing_shape() {
        let h = NormalizedSigmoid::increasing(1.0, 0.5);
        assert!((h.eval(1.0) - 0.5).abs() < 1e-12);
        assert!(h.eval(3.0) > 0.95);
        assert!(h.eval(-1.0) < 0.05);
        assert!(h.eval(2.0) > h.eval(1.5));
    }

    #[test]
    fn decreasing_shape() {
        let h = NormalizedSigmoid::decreasing(0.25, 0.08);
        assert!((h.eval(0.25) - 0.5).abs() < 1e-12);
        assert!(h.eval(0.0) > 0.9);
        assert!(h.eval(1.0) < 0.01);
    }

    #[test]
    fn always_in_unit_interval() {
        let h = NormalizedSigmoid::increasing(0.0, 1.0);
        for x in [-1e6, -1.0, 0.0, 1.0, 1e6] {
            let y = h.eval(x);
            assert!((0.0..=1.0).contains(&y), "h({x}) = {y}");
        }
    }
}
