//! The compound reward signal (paper §4.2): a weighted sum of
//! interestingness, diversity, and coherency, with the weights auto-balanced
//! so no component contributes less than 10% of the total on a random-policy
//! probe (paper §6.1).

use crate::coherency::{CoherencyClassifier, CoherencyConfig};
use crate::diversity::{step_diversity, DiversityConfig};
use crate::interestingness::{step_interestingness, InterestingnessConfig};
use atena_env::{EdaAction, EdaEnv, OpOutcome, RewardBreakdown, RewardModel, StepInfo};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Component weights of the compound reward.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardWeights {
    /// Weight of the interestingness component.
    pub interestingness: f64,
    /// Weight of the diversity component.
    pub diversity: f64,
    /// Weight of the coherency component.
    pub coherency: f64,
}

impl Default for RewardWeights {
    fn default() -> Self {
        Self {
            interestingness: 1.0,
            diversity: 1.0,
            coherency: 1.0,
        }
    }
}

/// Which components are enabled — the ATN-IO ablation keeps only
/// interestingness (paper §6.1, baseline 3B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RewardComponents {
    /// Enable interestingness.
    pub interestingness: bool,
    /// Enable diversity.
    pub diversity: bool,
    /// Enable coherency.
    pub coherency: bool,
}

impl RewardComponents {
    /// All components enabled (full ATENA).
    pub fn all() -> Self {
        Self {
            interestingness: true,
            diversity: true,
            coherency: true,
        }
    }

    /// Interestingness only (the ATN-IO / Greedy-IO baselines).
    pub fn interestingness_only() -> Self {
        Self {
            interestingness: true,
            diversity: false,
            coherency: false,
        }
    }
}

/// Penalties for degenerate operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PenaltyConfig {
    /// Reward for an ill-typed / unresolvable operation.
    pub invalid_op: f64,
    /// Reward for BACK at the root display.
    pub back_at_root: f64,
}

impl Default for PenaltyConfig {
    fn default() -> Self {
        Self {
            invalid_op: -1.0,
            back_at_root: -0.5,
        }
    }
}

/// The compound reward model.
pub struct CompoundReward {
    interestingness: InterestingnessConfig,
    diversity: DiversityConfig,
    classifier: CoherencyClassifier,
    weights: RewardWeights,
    components: RewardComponents,
    penalties: PenaltyConfig,
}

impl CompoundReward {
    /// Build with default sub-configurations and uniform weights.
    pub fn new(coherency: CoherencyConfig) -> Self {
        Self {
            interestingness: InterestingnessConfig::default(),
            diversity: DiversityConfig::default(),
            classifier: CoherencyClassifier::new(&coherency),
            weights: RewardWeights::default(),
            components: RewardComponents::all(),
            penalties: PenaltyConfig::default(),
        }
    }

    /// Restrict the enabled components (for the ablation baselines).
    pub fn with_components(mut self, components: RewardComponents) -> Self {
        self.components = components;
        self
    }

    /// Override the weights.
    pub fn with_weights(mut self, weights: RewardWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Current weights.
    pub fn weights(&self) -> RewardWeights {
        self.weights
    }

    /// The coherency classifier.
    pub fn classifier(&self) -> &CoherencyClassifier {
        &self.classifier
    }

    /// Calibrate on an environment (paper §6.1):
    ///
    /// 1. probe the environment with a uniform-random policy for
    ///    `n_probe_steps`, collecting coherency-rule votes;
    /// 2. fit the weak-supervision label model on the votes;
    /// 3. set the component weights so that each enabled component's mean
    ///    absolute contribution is equal — hence no component falls below
    ///    10% of the total.
    pub fn fit(&mut self, env: &mut EdaEnv, n_probe_steps: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vote_rows = Vec::with_capacity(n_probe_steps);
        let mut sums = (0.0f64, 0.0f64, 0.0f64);
        let mut n_applied = 0usize;

        env.reset_with_seed(seed);
        let mut applied_votes: Vec<usize> = Vec::new();
        for _ in 0..n_probe_steps {
            let action = random_action(env, &mut rng);
            let op = env.resolve(&action);
            let preview = env.preview(&op);
            {
                let info = env.step_info(&preview);
                vote_rows.push(self.classifier.votes(&info));
                if info.outcome.is_applied() {
                    sums.0 += step_interestingness(&self.interestingness, &info);
                    sums.1 += step_diversity(&self.diversity, &info);
                    applied_votes.push(vote_rows.len() - 1);
                    n_applied += 1;
                }
            }
            env.commit(preview);
            if env.done() {
                env.reset_with_seed(rng.gen());
            }
        }
        self.classifier.fit(&vote_rows);
        // Coherency means must come from the *fitted* label model and in the
        // same form the score uses — the centered magnitude |2(p − ½)| — so
        // the weight balance reflects the signal the agent will actually see.
        sums.2 = applied_votes
            .iter()
            .map(|&i| {
                let p = self.classifier.model().posterior_coherent(&vote_rows[i]);
                ((p - 0.5) * 2.0).abs()
            })
            .sum();

        if n_applied > 0 {
            let n = n_applied as f64;
            let means = [sums.0 / n, sums.1 / n, sums.2 / n];
            // Equalize mean contributions; guard against dead components.
            let target = means.iter().copied().filter(|&m| m > 1e-6).sum::<f64>()
                / means.iter().filter(|&&m| m > 1e-6).count().max(1) as f64;
            let w = |mean: f64| {
                if mean > 1e-6 {
                    (target / mean).clamp(0.2, 5.0)
                } else {
                    1.0
                }
            };
            self.weights = RewardWeights {
                interestingness: w(means[0]),
                diversity: w(means[1]),
                coherency: w(means[2]),
            };
        }
        env.reset_with_seed(seed);
    }
}

impl RewardModel for CompoundReward {
    fn score(&self, info: &StepInfo<'_>) -> RewardBreakdown {
        match info.outcome {
            OpOutcome::Invalid(_) => {
                return RewardBreakdown {
                    penalty: self.penalties.invalid_op,
                    total: self.penalties.invalid_op,
                    ..Default::default()
                }
            }
            OpOutcome::BackAtRoot => {
                return RewardBreakdown {
                    penalty: self.penalties.back_at_root,
                    total: self.penalties.back_at_root,
                    ..Default::default()
                }
            }
            OpOutcome::Applied => {}
        }
        let i = if self.components.interestingness {
            self.weights.interestingness * step_interestingness(&self.interestingness, info)
        } else {
            0.0
        };
        let d = if self.components.diversity {
            self.weights.diversity * step_diversity(&self.diversity, info)
        } else {
            0.0
        };
        let c = if self.components.coherency {
            // Center the coherency confidence so incoherent ops subtract.
            self.weights.coherency * (self.classifier.score(info) - 0.5) * 2.0
        } else {
            0.0
        };
        RewardBreakdown {
            interestingness: i,
            diversity: d,
            coherency: c,
            penalty: 0.0,
            total: i + d + c,
        }
    }
}

/// Sample a uniformly random action from the environment's action space.
pub fn random_action<R: Rng + ?Sized>(env: &EdaEnv, rng: &mut R) -> EdaAction {
    let space = env.action_space();
    match rng.gen_range(0..3u8) {
        0 => EdaAction::Filter {
            attr: rng.gen_range(0..space.n_attrs()),
            op: rng.gen_range(0..atena_dataframe::CmpOp::ALL.len()),
            bin: rng.gen_range(0..space.n_bins()),
        },
        1 => EdaAction::Group {
            key: rng.gen_range(0..space.n_attrs()),
            func: rng.gen_range(0..atena_dataframe::AggFunc::ALL.len()),
            agg: rng.gen_range(0..space.n_attrs()),
        },
        _ => EdaAction::Back,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::{AttrRole, DataFrame};
    use atena_env::EnvConfig;

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "proto",
                AttrRole::Categorical,
                (0..80).map(|i| Some(if i < 60 { "tcp" } else { "icmp" })),
            )
            .str(
                "src_ip",
                AttrRole::Categorical,
                (0..80).map(|i| Some(["10.0.0.1", "10.0.0.2", "10.0.0.3"][i % 3])),
            )
            .int(
                "length",
                AttrRole::Numeric,
                (0..80).map(|i| Some((i * 13 % 97) as i64)),
            )
            .build()
            .unwrap()
    }

    fn env() -> EdaEnv {
        EdaEnv::new(
            base(),
            EnvConfig {
                episode_len: 8,
                n_bins: 6,
                history_window: 3,
                seed: 11,
            },
        )
    }

    #[test]
    fn invalid_op_gets_penalty() {
        let mut e = env();
        e.reset();
        let reward = CompoundReward::new(CoherencyConfig::with_focal_attrs(vec![]));
        // SUM over a string column.
        let op = e.resolve(&EdaAction::Group {
            key: 0,
            func: 1,
            agg: 0,
        });
        let p = e.preview(&op);
        let info = e.step_info(&p);
        let r = reward.score(&info);
        assert_eq!(r.total, -1.0);
        assert_eq!(r.interestingness, 0.0);
    }

    #[test]
    fn good_group_earns_positive_reward() {
        let mut e = env();
        e.reset();
        let mut reward =
            CompoundReward::new(CoherencyConfig::with_focal_attrs(vec!["src_ip".into()]));
        reward.fit(&mut e, 200, 5);
        // Group by proto, COUNT(length): compact, coherent, novel.
        let op = e.resolve(&EdaAction::Group {
            key: 0,
            func: 0,
            agg: 2,
        });
        let p = e.preview(&op);
        let info = e.step_info(&p);
        let r = reward.score(&info);
        assert!(r.total > 0.0, "breakdown: {r:?}");
        assert!(r.interestingness > 0.0);
        assert!(r.diversity > 0.0);
    }

    #[test]
    fn fit_balances_weights() {
        let mut e = env();
        let mut reward = CompoundReward::new(CoherencyConfig::with_focal_attrs(vec![]));
        reward.fit(&mut e, 400, 9);
        let w = reward.weights();
        for v in [w.interestingness, w.diversity, w.coherency] {
            assert!((0.2..=5.0).contains(&v), "weight out of range: {v}");
        }
    }

    #[test]
    fn interestingness_only_disables_other_components() {
        let mut e = env();
        e.reset();
        let reward = CompoundReward::new(CoherencyConfig::default())
            .with_components(RewardComponents::interestingness_only());
        let op = e.resolve(&EdaAction::Group {
            key: 0,
            func: 0,
            agg: 2,
        });
        let p = e.preview(&op);
        let info = e.step_info(&p);
        let r = reward.score(&info);
        assert_eq!(r.diversity, 0.0);
        assert_eq!(r.coherency, 0.0);
        assert!(r.interestingness > 0.0);
        assert_eq!(r.total, r.interestingness);
    }

    #[test]
    fn back_at_root_penalized() {
        let mut e = env();
        e.reset();
        let reward = CompoundReward::new(CoherencyConfig::default());
        let op = e.resolve(&EdaAction::Back);
        let p = e.preview(&op);
        let info = e.step_info(&p);
        let r = reward.score(&info);
        assert_eq!(r.total, -0.5);
    }

    #[test]
    fn random_actions_are_in_range() {
        let e = env();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            match random_action(&e, &mut rng) {
                EdaAction::Filter { attr, op, bin } => {
                    assert!(attr < 3 && op < 8 && bin < 6);
                }
                EdaAction::Group { key, func, agg } => {
                    assert!(key < 3 && func < 5 && agg < 3);
                }
                EdaAction::Back => {}
            }
        }
    }

    #[test]
    fn full_random_episode_rewards_are_finite() {
        let mut e = env();
        let mut reward =
            CompoundReward::new(CoherencyConfig::with_focal_attrs(vec!["src_ip".into()]));
        reward.fit(&mut e, 100, 1);
        e.reset_with_seed(77);
        let mut rng = StdRng::seed_from_u64(42);
        let mut total = 0.0;
        while !e.done() {
            let a = random_action(&e, &mut rng);
            let op = e.resolve(&a);
            let p = e.preview(&op);
            let r = {
                let info = e.step_info(&p);
                reward.score(&info)
            };
            assert!(r.total.is_finite());
            total += r.total;
            e.commit(p);
        }
        assert!(total.is_finite());
    }
}
