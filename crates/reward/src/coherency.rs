//! Coherency classification (paper §4.2): a weak-supervision classifier
//! built from heuristic labeling rules — general rules that apply to any
//! dataset plus data-dependent rules parameterized by the schema's semantic
//! roles and the user's focal attributes. The rules' votes are combined by
//! the generative [`LabelModel`].

use crate::labelmodel::{LabelModel, Vote};
use atena_dataframe::AttrRole;
use atena_env::{OpOutcome, OpType, ResolvedOp, StepInfo};
use serde::{Deserialize, Serialize};

/// A labeling rule: inspects a step in context and votes.
pub trait CoherencyRule: Send + Sync {
    /// Stable rule name (diagnostics / reports).
    fn name(&self) -> &'static str;
    /// Vote on a step.
    fn vote(&self, info: &StepInfo<'_>) -> Vote;
}

/// Configuration for the data-dependent rules.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CoherencyConfig {
    /// Focal attributes the user cares about (paper §3): operations that
    /// involve them are preferred.
    pub focal_attrs: Vec<String>,
    /// Group-by keys with more distinct values than this are incoherent.
    pub max_group_cardinality: usize,
    /// Stacking more group-by attributes than this is incoherent.
    pub max_group_attrs: usize,
}

impl CoherencyConfig {
    /// Defaults matching the paper's examples (4 group attributes max).
    pub fn with_focal_attrs(focal_attrs: Vec<String>) -> Self {
        Self {
            focal_attrs,
            max_group_cardinality: 50,
            max_group_attrs: 4,
        }
    }
}

/// Attribute names referenced by an operation.
fn op_attrs(op: &ResolvedOp) -> Vec<&str> {
    match op {
        ResolvedOp::Filter(p) => vec![p.attr.as_str()],
        ResolvedOp::Group { key, agg, .. } => vec![key.as_str(), agg.as_str()],
        ResolvedOp::Back => vec![],
    }
}

fn role_of(info: &StepInfo<'_>, attr: &str) -> Option<AttrRole> {
    info.base.schema().field(attr).ok().map(|f| f.role)
}

macro_rules! rule {
    ($struct_name:ident, $name:literal, $info:ident, $body:expr) => {
        /// See the rule table in the module docs.
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $struct_name;
        impl CoherencyRule for $struct_name {
            fn name(&self) -> &'static str {
                $name
            }
            fn vote(&self, $info: &StepInfo<'_>) -> Vote {
                $body
            }
        }
    };
}

rule!(InvalidOpRule, "invalid-op", info, {
    match info.outcome {
        OpOutcome::Invalid(_) => Vote::Incoherent,
        _ => Vote::Abstain,
    }
});

rule!(TooManyGroupAttrsRule, "group-on-many-attrs", info, {
    // Paper: "a group-by employed on more than four attributes is incoherent".
    if info.op.op_type() == OpType::Group && info.new_display.spec.group_keys.len() > 4 {
        Vote::Incoherent
    } else {
        Vote::Abstain
    }
});

rule!(
    GroupOnContinuousRule,
    "group-on-continuous-numeric",
    info,
    {
        // Paper: "a group-by on a continuous, numerical attribute is incoherent".
        // The rule only flags the violation; voting Coherent for every
        // categorical grouping would saturate the posterior and drown the
        // rarer churn signals.
        if let ResolvedOp::Group { key, .. } = info.op {
            if role_of(info, key) == Some(AttrRole::Numeric) {
                return Vote::Incoherent;
            }
        }
        Vote::Abstain
    }
);

rule!(RepeatedOpRule, "repeated-op", info, {
    let recent = info.past_ops.iter().rev().take(3);
    for prev in recent {
        if &prev.op == info.op && info.op.op_type() != OpType::Back {
            return Vote::Incoherent;
        }
    }
    Vote::Abstain
});

rule!(EmptyResultRule, "empty-result", info, {
    if info.outcome.is_applied()
        && info.op.op_type() == OpType::Filter
        && info.new_display.n_data_rows() == 0
    {
        Vote::Incoherent
    } else {
        Vote::Abstain
    }
});

rule!(BackAfterBackRule, "back-after-back", info, {
    if info.op.op_type() == OpType::Back {
        match info.past_ops.last() {
            Some(prev) if prev.op.op_type() == OpType::Back => Vote::Incoherent,
            Some(_) => Vote::Abstain,
            None => Vote::Incoherent, // BACK as the very first operation
        }
    } else {
        Vote::Abstain
    }
});

rule!(UselessFilterRule, "useless-filter", info, {
    if info.op.op_type() != OpType::Filter || !info.outcome.is_applied() {
        return Vote::Abstain;
    }
    let before = info.prev_display.n_data_rows();
    let after = info.new_display.n_data_rows();
    if before == 0 {
        return Vote::Abstain;
    }
    let kept = after as f64 / before as f64;
    if kept > 0.97 {
        Vote::Incoherent // filter changed (almost) nothing
    } else {
        // Selectivity alone is not evidence of coherence — voting Coherent
        // for every somewhat-selective filter lets this blunt heuristic
        // outvote the surgical churn rules once the label model inflates
        // its accuracy. The positive signal comes from the pattern rules.
        Vote::Abstain
    }
});

rule!(SingletonGroupsRule, "singleton-groups", info, {
    if info.op.op_type() != OpType::Group || !info.outcome.is_applied() {
        return Vote::Abstain;
    }
    match &info.new_display.grouping {
        Some(g) if g.n_groups > 0 => {
            let rows = info.new_display.n_data_rows().max(1);
            if g.n_groups == rows && rows > 8 {
                Vote::Incoherent // group-by on a (near-)unique key
            } else {
                Vote::Abstain
            }
        }
        _ => Vote::Abstain,
    }
});

rule!(DrillDownRule, "drill-down-pattern", info, {
    // Filtering on an attribute that the previous display grouped by is the
    // canonical drill-down and reads naturally in a notebook.
    if let ResolvedOp::Filter(p) = info.op {
        if info.prev_display.spec.group_keys.contains(&p.attr) {
            return Vote::Coherent;
        }
    }
    Vote::Abstain
});

rule!(DrillIntoExtremeRule, "drill-into-extreme-group", info, {
    // The paper's Example 1.1 narrative: group by month, *see* that June is
    // worst, then filter to June. Filtering the previous grouped display to
    // its dominant or extreme-aggregate group is the most coherent move in
    // an EDA notebook; filtering it to a value that is not even among the
    // groups reads as a non sequitur.
    let ResolvedOp::Filter(p) = info.op else {
        return Vote::Abstain;
    };
    if p.op != atena_dataframe::CmpOp::Eq {
        return Vote::Abstain;
    }
    let prev = info.prev_display;
    if !prev.spec.group_keys.contains(&p.attr) {
        return Vote::Abstain;
    }
    let result = &prev.result;
    let Ok(key_col) = result.column(&p.attr) else {
        return Vote::Abstain;
    };
    let term_key = p.term.as_ref().key();
    let mut found = false;
    let mut is_top_count = false;
    let mut is_extreme_agg = false;
    // Largest group by count.
    if let Ok(count_col) = result.column("count") {
        let mut best: Option<(f64, usize)> = None;
        for r in 0..result.n_rows() {
            let c = count_col.get(r).as_f64().unwrap_or(0.0);
            if best.is_none_or(|(b, _)| c > b) {
                best = Some((c, r));
            }
            if key_col.get(r).key() == term_key {
                found = true;
            }
        }
        if let Some((_, r)) = best {
            is_top_count = key_col.get(r).key() == term_key;
        }
    }
    // Extreme (max) row of any aggregate column.
    for field in result.schema().fields() {
        if field.name == "count" || !field.name.contains('(') {
            continue;
        }
        let Ok(agg_col) = result.column(&field.name) else {
            continue;
        };
        let mut best: Option<(f64, usize)> = None;
        for r in 0..result.n_rows() {
            if let Some(v) = agg_col.get(r).as_f64() {
                if best.is_none_or(|(b, _)| v > b) {
                    best = Some((v, r));
                }
            }
        }
        if let Some((_, r)) = best {
            if key_col.get(r).key() == term_key {
                is_extreme_agg = true;
            }
        }
    }
    if is_top_count || is_extreme_agg {
        Vote::Coherent
    } else if !found {
        Vote::Incoherent
    } else {
        Vote::Abstain
    }
});

rule!(AggregateCategoricalRule, "aggregate-categorical", info, {
    // MIN/MAX/SUM/AVG over a categorical or free-text column is
    // syntactically valid but reads as noise ("MAX(source_ip)"); the
    // natural aggregate over non-measures is COUNT.
    if let ResolvedOp::Group { agg, func, .. } = info.op {
        if *func != atena_dataframe::AggFunc::Count {
            match role_of(info, agg) {
                Some(AttrRole::Categorical) | Some(AttrRole::Text) => {
                    return Vote::Incoherent;
                }
                _ => {}
            }
        }
    }
    Vote::Abstain
});

rule!(RefilterSameAttrRule, "refilter-same-attr", info, {
    // Stacking a second range/equality filter on an attribute the current
    // display is already filtered by (time <= 858, then time < 269, then
    // time > 50 ...) narrows the same sliver over and over — churn, not
    // exploration.
    if let ResolvedOp::Filter(p) = info.op {
        if info
            .prev_display
            .spec
            .predicates
            .iter()
            .any(|q| q.attr == p.attr)
        {
            return Vote::Incoherent;
        }
    }
    Vote::Abstain
});

rule!(RegroupSameKeyRule, "regroup-same-key", info, {
    // Re-issuing a GROUP whose key the current display is already grouped
    // by (only the aggregate changes) churns the same view — the
    // degenerate loop a reward-hacking agent falls into.
    if let ResolvedOp::Group { key, .. } = info.op {
        if info.prev_display.spec.group_keys.contains(key) {
            return Vote::Incoherent;
        }
    }
    Vote::Abstain
});

rule!(NoNovelViewRule, "no-novel-view", info, {
    // An operation whose resulting display is (numerically) almost
    // indistinguishable from one already seen adds nothing to the
    // notebook. BACK is navigation, not content — exempt.
    if info.op.op_type() == OpType::Back || !info.outcome.is_applied() {
        return Vote::Abstain;
    }
    const EPS: f64 = 0.02;
    let v = &info.new_display.vector;
    let dim = v.dim().max(1) as f64;
    for earlier in &info.earlier_vectors {
        if v.euclidean_distance(earlier) / dim.sqrt() < EPS {
            return Vote::Incoherent;
        }
    }
    Vote::Abstain
});

rule!(GroupOnIdentifierRule, "group-on-identifier", info, {
    // Data-dependent rule family from the paper: operations keyed on an
    // identifier column (e.g. 'flight-number') are largely incoherent.
    if let ResolvedOp::Group { key, .. } = info.op {
        if role_of(info, key) == Some(AttrRole::Identifier) {
            return Vote::Incoherent;
        }
    }
    Vote::Abstain
});

rule!(GroupAfterFilterRule, "group-after-filter", info, {
    // Grouping right after narrowing the data is the classic explore step.
    if info.op.op_type() == OpType::Group && info.outcome.is_applied() {
        if let Some(prev) = info.past_ops.last() {
            if prev.op.op_type() == OpType::Filter {
                return Vote::Coherent;
            }
        }
    }
    Vote::Abstain
});

/// Data-dependent rule: aggregations over identifier-like columns with a
/// numeric function are meaningless (paper's example: "aggregating on the
/// column 'flight-number' is largely incoherent").
#[derive(Debug, Clone, Copy, Default)]
pub struct AggregateIdentifierRule;
impl CoherencyRule for AggregateIdentifierRule {
    fn name(&self) -> &'static str {
        "aggregate-identifier"
    }
    fn vote(&self, info: &StepInfo<'_>) -> Vote {
        if let ResolvedOp::Group { agg, func, .. } = info.op {
            if role_of(info, agg) == Some(AttrRole::Identifier)
                && *func != atena_dataframe::AggFunc::Count
            {
                return Vote::Incoherent;
            }
        }
        Vote::Abstain
    }
}

/// Data-dependent rule: operations that touch a focal attribute are
/// preferred (paper: "if the user focuses on flight delays, aggregating on
/// 'departure-delay time' is preferred").
#[derive(Debug, Clone, Default)]
pub struct FocalAttrRule {
    focal: Vec<String>,
}
impl FocalAttrRule {
    /// Create from the configured focal attributes.
    pub fn new(focal: Vec<String>) -> Self {
        Self { focal }
    }
}
impl CoherencyRule for FocalAttrRule {
    fn name(&self) -> &'static str {
        "focal-attribute"
    }
    fn vote(&self, info: &StepInfo<'_>) -> Vote {
        if self.focal.is_empty() || !info.outcome.is_applied() {
            return Vote::Abstain;
        }
        if op_attrs(info.op)
            .iter()
            .any(|a| self.focal.iter().any(|f| f == a))
        {
            Vote::Coherent
        } else {
            Vote::Abstain
        }
    }
}

/// Data-dependent rule: group-by keys with huge cardinality are unreadable.
#[derive(Debug, Clone, Copy)]
pub struct HighCardinalityKeyRule {
    max: usize,
}
impl HighCardinalityKeyRule {
    /// Create with the configured cardinality cap.
    pub fn new(max: usize) -> Self {
        Self { max }
    }
}
impl CoherencyRule for HighCardinalityKeyRule {
    fn name(&self) -> &'static str {
        "high-cardinality-key"
    }
    fn vote(&self, info: &StepInfo<'_>) -> Vote {
        if let Some(g) = &info.new_display.grouping {
            // Only shattered groupings are incoherent: many groups AND
            // barely more rows than groups. A 254-group breakdown of a
            // 5000-row scan is exactly what an analyst wants to see.
            let rows = info.new_display.n_data_rows();
            if info.op.op_type() == OpType::Group && g.n_groups > self.max && g.n_groups * 2 >= rows
            {
                return Vote::Incoherent;
            }
        }
        Vote::Abstain
    }
}

/// The full coherency classifier: the rule set plus the fitted label model.
pub struct CoherencyClassifier {
    rules: Vec<Box<dyn CoherencyRule>>,
    model: LabelModel,
}

impl CoherencyClassifier {
    /// Build the standard rule set (general + data-dependent) for a
    /// configuration, with an untrained (majority-vote) label model.
    pub fn new(config: &CoherencyConfig) -> Self {
        let rules: Vec<Box<dyn CoherencyRule>> = vec![
            Box::new(InvalidOpRule),
            Box::new(TooManyGroupAttrsRule),
            Box::new(GroupOnContinuousRule),
            Box::new(RepeatedOpRule),
            Box::new(EmptyResultRule),
            Box::new(BackAfterBackRule),
            Box::new(UselessFilterRule),
            Box::new(SingletonGroupsRule),
            Box::new(DrillDownRule),
            Box::new(DrillIntoExtremeRule),
            Box::new(GroupOnIdentifierRule),
            Box::new(RegroupSameKeyRule),
            Box::new(RefilterSameAttrRule),
            Box::new(AggregateCategoricalRule),
            Box::new(NoNovelViewRule),
            Box::new(GroupAfterFilterRule),
            Box::new(AggregateIdentifierRule),
            Box::new(FocalAttrRule::new(config.focal_attrs.clone())),
            Box::new(HighCardinalityKeyRule::new(
                config.max_group_cardinality.max(1),
            )),
        ];
        let model = LabelModel::untrained(rules.len());
        Self { rules, model }
    }

    /// Number of labeling rules.
    pub fn n_rules(&self) -> usize {
        self.rules.len()
    }

    /// Rule names in vote order.
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Collect one vote row for a step.
    pub fn votes(&self, info: &StepInfo<'_>) -> Vec<Vote> {
        self.rules.iter().map(|r| r.vote(info)).collect()
    }

    /// Fit the generative label model from unlabeled vote rows (collected by
    /// probing the environment with a random policy).
    pub fn fit(&mut self, vote_rows: &[Vec<Vote>]) {
        if !vote_rows.is_empty() {
            self.model = LabelModel::fit(vote_rows);
        }
    }

    /// Coherency confidence in `[0, 1]` for a step.
    pub fn score(&self, info: &StepInfo<'_>) -> f64 {
        self.model.posterior_coherent(&self.votes(info))
    }

    /// Access the underlying label model.
    pub fn model(&self) -> &LabelModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::{AttrRole, DataFrame};
    use atena_env::{EdaAction, EdaEnv, EnvConfig};

    fn base() -> DataFrame {
        DataFrame::builder()
            .str(
                "airline",
                AttrRole::Categorical,
                (0..60).map(|i| Some(["AA", "DL", "UA"][i % 3])),
            )
            .float(
                "delay",
                AttrRole::Numeric,
                (0..60).map(|i| Some(i as f64 * 1.37)),
            )
            .int(
                "flight_no",
                AttrRole::Identifier,
                (0..60).map(|i| Some(1000 + i as i64)),
            )
            .build()
            .unwrap()
    }

    fn env() -> EdaEnv {
        EdaEnv::new(
            base(),
            EnvConfig {
                episode_len: 12,
                n_bins: 5,
                history_window: 3,
                seed: 3,
            },
        )
    }

    fn classifier() -> CoherencyClassifier {
        CoherencyClassifier::new(&CoherencyConfig::with_focal_attrs(vec!["delay".into()]))
    }

    #[test]
    fn back_as_first_op_is_incoherent() {
        let mut e = env();
        e.reset();
        let c = classifier();
        let op = e.resolve(&EdaAction::Back);
        let p = e.preview(&op);
        let info = e.step_info(&p);
        let votes = c.votes(&info);
        assert!(votes.contains(&Vote::Incoherent));
        assert!(c.score(&info) < 0.5);
    }

    #[test]
    fn categorical_group_is_coherent() {
        let mut e = env();
        e.reset();
        let c = classifier();
        // Group by airline (categorical), AVG delay (focal!).
        let op = e.resolve(&EdaAction::Group {
            key: 0,
            func: 2,
            agg: 1,
        });
        let p = e.preview(&op);
        let info = e.step_info(&p);
        let score = c.score(&info);
        assert!(score > 0.5, "got {score}");
    }

    #[test]
    fn group_on_continuous_numeric_is_incoherent() {
        let mut e = env();
        e.reset();
        let c = classifier();
        // Group by delay (continuous float).
        let op = e.resolve(&EdaAction::Group {
            key: 1,
            func: 0,
            agg: 0,
        });
        let p = e.preview(&op);
        let info = e.step_info(&p);
        let score = c.score(&info);
        assert!(score < 0.5, "got {score}");
    }

    #[test]
    fn aggregate_identifier_is_incoherent() {
        let mut e = env();
        e.reset();
        let c = classifier();
        // AVG(flight_no) grouped by airline.
        let op = e.resolve(&EdaAction::Group {
            key: 0,
            func: 2,
            agg: 2,
        });
        let p = e.preview(&op);
        let info = e.step_info(&p);
        let votes = c.votes(&info);
        let idx = c
            .rule_names()
            .iter()
            .position(|&n| n == "aggregate-identifier")
            .unwrap();
        assert_eq!(votes[idx], Vote::Incoherent);
    }

    #[test]
    fn repeated_op_detected() {
        let mut e = env();
        e.reset();
        let c = classifier();
        let action = EdaAction::Group {
            key: 0,
            func: 2,
            agg: 1,
        };
        e.step(&action);
        // Applying the identical grouping again (spec dedups, so the display
        // is unchanged but the op repeats).
        let op = e.resolve(&action);
        let p = e.preview(&op);
        let info = e.step_info(&p);
        let idx = c
            .rule_names()
            .iter()
            .position(|&n| n == "repeated-op")
            .unwrap();
        assert_eq!(c.votes(&info)[idx], Vote::Incoherent);
    }

    #[test]
    fn fitting_on_probe_votes_changes_model() {
        let mut e = env();
        e.reset();
        let mut c = classifier();
        let mut rows = Vec::new();
        let mut rng_actions = vec![
            EdaAction::Group {
                key: 0,
                func: 2,
                agg: 1,
            },
            EdaAction::Back,
            EdaAction::Filter {
                attr: 0,
                op: 0,
                bin: 4,
            },
            EdaAction::Group {
                key: 1,
                func: 0,
                agg: 0,
            },
            EdaAction::Back,
            EdaAction::Back,
        ];
        rng_actions.extend_from_within(..);
        for a in &rng_actions {
            let op = e.resolve(a);
            let p = e.preview(&op);
            let info = e.step_info(&p);
            rows.push(c.votes(&info));
            e.commit(p);
            if e.done() {
                e.reset();
            }
        }
        let before = c.model().accuracies().to_vec();
        c.fit(&rows);
        assert_ne!(before, c.model().accuracies());
    }

    #[test]
    fn drill_into_extreme_group_rule() {
        let mut e = env();
        e.reset();
        let c = classifier();
        // Group by airline with AVG(delay): the last airline index has the
        // largest delays in our ramp (delay grows with row index), so the
        // extreme group is deterministic. First apply the grouping.
        e.step(&EdaAction::Group {
            key: 0,
            func: 2,
            agg: 1,
        });
        let grouped = e.session().current();
        // Find the extreme airline from the actual result.
        let result = &grouped.result;
        let mut best: Option<(f64, String)> = None;
        for r in 0..result.n_rows() {
            let v = result.value(r, "AVG(delay)").unwrap().as_f64().unwrap();
            let k = result
                .value(r, "airline")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            if best.as_ref().is_none_or(|(b, _)| v > *b) {
                best = Some((v, k));
            }
        }
        let extreme = best.unwrap().1;
        let idx = c
            .rule_names()
            .iter()
            .position(|&n| n == "drill-into-extreme-group")
            .unwrap();

        // Filtering into the extreme group: coherent.
        let op = atena_env::ResolvedOp::Filter(atena_dataframe::Predicate::new(
            "airline",
            atena_dataframe::CmpOp::Eq,
            extreme.as_str(),
        ));
        let p = e.preview(&op);
        let info = e.step_info(&p);
        assert_eq!(c.votes(&info)[idx], Vote::Coherent);

        // Filtering into a value that is not a group at all: incoherent.
        let op = atena_env::ResolvedOp::Filter(atena_dataframe::Predicate::new(
            "airline",
            atena_dataframe::CmpOp::Eq,
            "NOPE",
        ));
        let p = e.preview(&op);
        let info = e.step_info(&p);
        assert_eq!(c.votes(&info)[idx], Vote::Incoherent);
    }

    #[test]
    fn group_on_identifier_rule() {
        let mut e = env();
        e.reset();
        let c = classifier();
        // Group by flight_no (Identifier).
        let op = e.resolve(&EdaAction::Group {
            key: 2,
            func: 0,
            agg: 1,
        });
        let p = e.preview(&op);
        let info = e.step_info(&p);
        let idx = c
            .rule_names()
            .iter()
            .position(|&n| n == "group-on-identifier")
            .unwrap();
        assert_eq!(c.votes(&info)[idx], Vote::Incoherent);
    }

    #[test]
    fn high_cardinality_only_fires_on_shattered_groupings() {
        use atena_dataframe::DataFrame;
        // 400 rows, 200 distinct keys -> shattered (2 rows per group).
        let shattered = DataFrame::builder()
            .int(
                "k",
                AttrRole::Categorical,
                (0..400).map(|i| Some((i / 2) as i64)),
            )
            .int("v", AttrRole::Numeric, (0..400).map(|i| Some(i as i64)))
            .build()
            .unwrap();
        let mut e = EdaEnv::new(
            shattered,
            EnvConfig {
                episode_len: 4,
                ..Default::default()
            },
        );
        e.reset();
        let c = classifier();
        let op = e.resolve(&EdaAction::Group {
            key: 0,
            func: 0,
            agg: 1,
        });
        let p = e.preview(&op);
        let info = e.step_info(&p);
        let idx = c
            .rule_names()
            .iter()
            .position(|&n| n == "high-cardinality-key")
            .unwrap();
        assert_eq!(c.votes(&info)[idx], Vote::Incoherent);

        // 4000 rows over 200 groups (20 each): a legitimate breakdown.
        let dense = DataFrame::builder()
            .int(
                "k",
                AttrRole::Categorical,
                (0..4000).map(|i| Some((i % 200) as i64)),
            )
            .int("v", AttrRole::Numeric, (0..4000).map(|i| Some(i as i64)))
            .build()
            .unwrap();
        let mut e = EdaEnv::new(
            dense,
            EnvConfig {
                episode_len: 4,
                ..Default::default()
            },
        );
        e.reset();
        let op = e.resolve(&EdaAction::Group {
            key: 0,
            func: 0,
            agg: 1,
        });
        let p = e.preview(&op);
        let info = e.step_info(&p);
        assert_eq!(c.votes(&info)[idx], Vote::Abstain);
    }

    #[test]
    fn useless_filter_rule() {
        let mut e = env();
        e.reset();
        let c = classifier();
        // delay >= 0 keeps everything -> useless.
        let op = atena_env::ResolvedOp::Filter(atena_dataframe::Predicate::new(
            "delay",
            atena_dataframe::CmpOp::Ge,
            0i64,
        ));
        let p = e.preview(&op);
        let info = e.step_info(&p);
        let idx = c
            .rule_names()
            .iter()
            .position(|&n| n == "useless-filter")
            .unwrap();
        assert_eq!(c.votes(&info)[idx], Vote::Incoherent);
    }
}
