//! Interestingness measures (paper §4.2): a conciseness-based signal for
//! group-by operations and a KL-deviation signal for filter operations.

use crate::sigmoid::NormalizedSigmoid;
use atena_env::{Display, OpType, ResolvedOp, StepInfo};
use serde::{Deserialize, Serialize};

/// Configuration of the interestingness measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterestingnessConfig {
    /// Decreasing sigmoid over `g / r` (groups per underlying tuple):
    /// compact groupings that cover many tuples score high.
    pub group_ratio: NormalizedSigmoid,
    /// Decreasing sigmoid over the number of stacked group-by attributes.
    pub group_attrs: NormalizedSigmoid,
    /// Increasing sigmoid over the maximal KL divergence (bits) between the
    /// filtered display and its predecessor.
    pub filter_kl: NormalizedSigmoid,
    /// Multiplier applied when a grouping is degenerate (fewer than 2
    /// groups): a one-group table conveys nothing.
    pub degenerate_group_scale: f64,
    /// Attributes with more distinct values than this in the reference
    /// display are excluded from the KL deviation (their supports barely
    /// overlap between subsets, so KL on them is noise).
    pub max_kl_support: usize,
}

impl Default for InterestingnessConfig {
    fn default() -> Self {
        Self {
            group_ratio: NormalizedSigmoid::decreasing(0.25, 0.08),
            group_attrs: NormalizedSigmoid::decreasing(2.5, 0.6),
            filter_kl: NormalizedSigmoid::increasing(0.4, 0.25),
            degenerate_group_scale: 0.2,
            max_kl_support: 500,
        }
    }
}

/// Interestingness of a group-by display: `h₁(g/r) · h₂(a)` where `g` is the
/// number of groups, `r` the number of underlying tuples, and `a` the number
/// of grouped attributes — a conciseness measure in the spirit of [9, 17]:
/// compact group-by results covering many tuples are informative and easy to
/// understand.
pub fn group_interestingness(cfg: &InterestingnessConfig, display: &Display) -> f64 {
    let Some(g) = display.grouping.as_ref() else {
        return 0.0;
    };
    let r = display.n_data_rows();
    if r == 0 || g.n_groups == 0 {
        return 0.0;
    }
    let ratio = g.n_groups as f64 / r as f64;
    let score = cfg.group_ratio.eval(ratio) * cfg.group_attrs.eval(g.n_group_attrs as f64);
    if g.n_groups < 2 {
        score * cfg.degenerate_group_scale
    } else {
        score
    }
}

/// Interestingness of a filter display: `h(max_A D_KL(P_A(d_t) ‖ P_A(d_{t-1})))`
/// following the exceptionality measures of [37, 44, 45] — a filter is
/// interesting when the value distributions of the kept subset deviate
/// sharply from the previous display.
///
/// When the display is grouped, the comparison is restricted to the
/// currently aggregated attributes (paper §4.2); distributions are computed
/// over the underlying data views so dimensions always align.
///
/// `exclude` names the filtered attribute itself: a `time < 107` filter
/// trivially (tautologically) shifts the `time` distribution, so the
/// deviation that counts is the one induced in the *other* attributes —
/// the SeeDB-style reading of exceptionality.
pub fn filter_interestingness(
    cfg: &InterestingnessConfig,
    prev: &Display,
    new: &Display,
    exclude: Option<&str>,
) -> f64 {
    if new.n_data_rows() == 0 {
        return 0.0;
    }
    let schema = new.frame.schema();
    let mut attrs: Vec<&str> = if new.spec.is_grouped() {
        new.spec
            .aggregations
            .iter()
            .map(|(_, a)| a.as_str())
            .collect()
    } else {
        schema.fields().iter().map(|f| f.name.as_str()).collect()
    };
    // Drop the tautological self-deviation — unless it is the only
    // attribute under examination (a grouped display aggregating exactly
    // the filtered column), where the deviation is still the display's
    // content.
    if let Some(ex) = exclude {
        if attrs.iter().any(|a| *a != ex) {
            attrs.retain(|a| *a != ex);
        }
    }
    let mut max_kl: f64 = 0.0;
    for attr in attrs {
        // Near-unique columns (ports, timestamps, identifiers) make any two
        // subsets look divergent because their supports barely overlap; KL
        // on them is noise, not exceptionality. Only compare attributes
        // whose reference distribution is genuinely categorical-shaped.
        if let Ok(stats) = prev.frame.column_stats(attr) {
            if stats.n_distinct > cfg.max_kl_support || stats.distinct_ratio() > 0.3 {
                continue;
            }
        }
        // The shared (Arc-memoized) variant: distributions for a frame are
        // computed once and reused across steps, lanes, and the display
        // cache — the dominant cost of this reward on repeated prefixes.
        let (Ok(p_new), Ok(p_prev)) = (
            new.frame.value_distribution_shared(attr),
            prev.frame.value_distribution_shared(attr),
        ) else {
            continue;
        };
        if p_new.is_empty() {
            continue;
        }
        max_kl = max_kl.max(p_new.kl_divergence(&p_prev));
    }
    cfg.filter_kl.eval(max_kl)
}

/// Interestingness of one step, dispatched on the operation type. BACK and
/// invalid operations earn zero.
pub fn step_interestingness(cfg: &InterestingnessConfig, info: &StepInfo<'_>) -> f64 {
    if !info.outcome.is_applied() {
        return 0.0;
    }
    match info.op.op_type() {
        OpType::Back => 0.0,
        OpType::Group => {
            // A GROUP that adds no new key (same grouping, rotated
            // aggregate) re-displays a view the user has already seen; its
            // conciseness conveys nothing new and earns nothing — otherwise
            // the agent can farm the same compact grouping every step.
            if info.prev_display.spec.group_keys == info.new_display.spec.group_keys
                && info.prev_display.spec.is_grouped()
            {
                0.0
            } else {
                group_interestingness(cfg, info.new_display)
            }
        }
        OpType::Filter => {
            let filtered_attr = match info.op {
                ResolvedOp::Filter(p) => Some(p.attr.as_str()),
                _ => None,
            };
            filter_interestingness(cfg, info.prev_display, info.new_display, filtered_attr)
        }
    }
}

/// Interestingness of a display reached by an arbitrary (replayed) op — used
/// by the benchmark and the greedy baselines when re-scoring notebooks.
pub fn display_interestingness(
    cfg: &InterestingnessConfig,
    op: &ResolvedOp,
    prev: &Display,
    new: &Display,
) -> f64 {
    match op {
        ResolvedOp::Back => 0.0,
        ResolvedOp::Group { .. } => group_interestingness(cfg, new),
        ResolvedOp::Filter(p) => filter_interestingness(cfg, prev, new, Some(p.attr.as_str())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atena_dataframe::{AggFunc, AttrRole, CmpOp, DataFrame, Predicate};
    use atena_env::DisplaySpec;

    fn base() -> DataFrame {
        // 100 rows: protocol heavily skewed toward "tcp" except a block of
        // "icmp" rows with high port values.
        let protocols: Vec<Option<&str>> = (0..100)
            .map(|i| Some(if i < 80 { "tcp" } else { "icmp" }))
            .collect();
        let ports: Vec<Option<i64>> = (0..100)
            .map(|i| {
                Some(if i < 80 {
                    (i % 5) as i64
                } else {
                    9000 + i as i64
                })
            })
            .collect();
        DataFrame::builder()
            .str("protocol", AttrRole::Categorical, protocols)
            .int("port", AttrRole::Numeric, ports)
            .build()
            .unwrap()
    }

    #[test]
    fn compact_grouping_beats_shattered() {
        let cfg = InterestingnessConfig::default();
        let b = base();
        let compact = Display::materialize(
            &b,
            DisplaySpec::default().with_grouping("protocol".into(), AggFunc::Count, "port".into()),
        )
        .unwrap();
        let shattered = Display::materialize(
            &b,
            DisplaySpec::default().with_grouping("port".into(), AggFunc::Count, "port".into()),
        )
        .unwrap();
        let c = group_interestingness(&cfg, &compact);
        let s = group_interestingness(&cfg, &shattered);
        assert!(c > s, "compact {c} should beat shattered {s}");
        assert!(c > 0.5);
    }

    #[test]
    fn stacked_group_attrs_reduce_score() {
        let cfg = InterestingnessConfig::default();
        // Same g/r, different attribute counts.
        let one = cfg.group_ratio.eval(0.05) * cfg.group_attrs.eval(1.0);
        let five = cfg.group_ratio.eval(0.05) * cfg.group_attrs.eval(5.0);
        assert!(one > five * 2.0);
    }

    #[test]
    fn single_group_degenerate() {
        let cfg = InterestingnessConfig::default();
        let b = DataFrame::builder()
            .str("k", AttrRole::Categorical, vec![Some("a"); 50])
            .int("v", AttrRole::Numeric, (0..50).map(Some))
            .build()
            .unwrap();
        let d = Display::materialize(
            &b,
            DisplaySpec::default().with_grouping("k".into(), AggFunc::Avg, "v".into()),
        )
        .unwrap();
        let score = group_interestingness(&cfg, &d);
        assert!(
            score < 0.25,
            "one-group display should score low, got {score}"
        );
    }

    #[test]
    fn surprising_filter_beats_bland_filter() {
        let cfg = InterestingnessConfig::default();
        let b = base();
        let root = Display::root(&b);
        // Selecting the icmp minority shifts both distributions sharply.
        let surprising = Display::materialize(
            &b,
            DisplaySpec::default().with_predicate(Predicate::new("protocol", CmpOp::Eq, "icmp")),
        )
        .unwrap();
        // Selecting 99% of rows barely changes anything.
        let bland = Display::materialize(
            &b,
            DisplaySpec::default().with_predicate(Predicate::new("port", CmpOp::Ge, 0i64)),
        )
        .unwrap();
        let s = filter_interestingness(&cfg, &root, &surprising, Some("protocol"));
        let l = filter_interestingness(&cfg, &root, &bland, Some("port"));
        assert!(s > l, "surprising {s} vs bland {l}");
        assert!(s > 0.5);
        assert!(l < 0.3);
    }

    #[test]
    fn empty_filter_scores_zero() {
        let cfg = InterestingnessConfig::default();
        let b = base();
        let root = Display::root(&b);
        let empty = Display::materialize(
            &b,
            DisplaySpec::default().with_predicate(Predicate::new("port", CmpOp::Gt, 999999i64)),
        )
        .unwrap();
        assert_eq!(
            filter_interestingness(&cfg, &root, &empty, Some("port")),
            0.0
        );
    }

    #[test]
    fn back_scores_zero_via_display_interestingness() {
        let cfg = InterestingnessConfig::default();
        let b = base();
        let root = Display::root(&b);
        assert_eq!(
            display_interestingness(&cfg, &ResolvedOp::Back, &root, &root),
            0.0
        );
    }

    #[test]
    fn grouped_filter_uses_aggregated_attrs() {
        let cfg = InterestingnessConfig::default();
        let b = base();
        let grouped_spec =
            DisplaySpec::default().with_grouping("protocol".into(), AggFunc::Avg, "port".into());
        let prev = Display::materialize(&b, grouped_spec.clone()).unwrap();
        let new = Display::materialize(
            &b,
            grouped_spec.with_predicate(Predicate::new("port", CmpOp::Ge, 9000i64)),
        )
        .unwrap();
        // Port distribution shifts drastically once tcp rows are dropped.
        let s = filter_interestingness(&cfg, &prev, &new, Some("port"));
        assert!(s > 0.5, "got {s}");
    }
}
