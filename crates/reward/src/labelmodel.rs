//! A from-scratch weak-supervision label model in the spirit of Snorkel
//! (paper §4.2 cites [35]): labeling functions vote
//! coherent / incoherent / abstain on unlabeled operations; a generative
//! model estimates per-function accuracies by expectation–maximization and
//! produces a probabilistic coherency label.

use serde::{Deserialize, Serialize};

/// A labeling-function vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Vote {
    /// The operation looks coherent.
    Coherent,
    /// The operation looks incoherent.
    Incoherent,
    /// The rule does not apply.
    Abstain,
}

impl Vote {
    /// +1 / -1 / 0 encoding.
    pub fn signed(self) -> i8 {
        match self {
            Vote::Coherent => 1,
            Vote::Incoherent => -1,
            Vote::Abstain => 0,
        }
    }
}

/// Generative label model over `m` labeling functions.
///
/// Model: a latent label `y ∈ {coherent, incoherent}` with prior `π`;
/// labeling function `j`, when it does not abstain, agrees with `y` with
/// accuracy `θ_j`. Accuracies and the prior are fit by EM on unlabeled vote
/// matrices; the posterior `P(y = coherent | votes)` is the coherency
/// confidence the reward uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelModel {
    accuracies: Vec<f64>,
    prior: f64,
}

impl LabelModel {
    /// Number of EM iterations used by [`LabelModel::fit`].
    pub const EM_ITERS: usize = 30;
    /// Accuracies are clamped to this range to keep the model identifiable
    /// and posteriors bounded away from 0/1.
    pub const ACC_RANGE: (f64, f64) = (0.55, 0.98);

    /// An untrained model: every function at the initial accuracy, prior
    /// 0.5. Usable as-is (it degenerates to a majority vote).
    pub fn untrained(n_functions: usize) -> Self {
        Self {
            accuracies: vec![0.7; n_functions],
            prior: 0.5,
        }
    }

    /// Fit by EM on a matrix of votes (`rows` = unlabeled operations,
    /// `cols` = labeling functions).
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn fit(votes: &[Vec<Vote>]) -> Self {
        let n_functions = votes.first().map_or(0, Vec::len);
        let mut model = Self::untrained(n_functions);
        if votes.is_empty() || n_functions == 0 {
            return model;
        }
        for row in votes {
            assert_eq!(row.len(), n_functions, "ragged vote matrix");
        }

        for _ in 0..Self::EM_ITERS {
            // E-step: posterior P(y = coherent | votes_i).
            let posteriors: Vec<f64> = votes
                .iter()
                .map(|row| model.posterior_coherent(row))
                .collect();

            // M-step: re-estimate accuracies and prior.
            let mut new_acc = Vec::with_capacity(n_functions);
            for j in 0..n_functions {
                let mut agree = 1.0; // Laplace smoothing
                let mut total = 2.0;
                for (row, &p) in votes.iter().zip(&posteriors) {
                    match row[j] {
                        Vote::Abstain => {}
                        Vote::Coherent => {
                            agree += p;
                            total += 1.0;
                        }
                        Vote::Incoherent => {
                            agree += 1.0 - p;
                            total += 1.0;
                        }
                    }
                }
                let (lo, hi) = Self::ACC_RANGE;
                new_acc.push((agree / total).clamp(lo, hi));
            }
            // The prior stays at the neutral 1/2: the unlabeled sample comes
            // from a *random* policy whose steps are mostly incoherent, and
            // inheriting that skew would pin every posterior low. The rules'
            // design polarity (a Coherent vote is evidence for coherent) is
            // what grounds the latent, not the probe's class balance.
            model = Self {
                accuracies: new_acc,
                prior: model.prior,
            };
        }
        model
    }

    /// Posterior probability that the operation is coherent given one vote
    /// row. With all abstains, returns the prior.
    pub fn posterior_coherent(&self, votes: &[Vote]) -> f64 {
        assert_eq!(votes.len(), self.accuracies.len(), "vote arity mismatch");
        // Work in log space for numerical robustness.
        let mut log_pos = self.prior.ln();
        let mut log_neg = (1.0 - self.prior).ln();
        for (v, &acc) in votes.iter().zip(&self.accuracies) {
            match v {
                Vote::Abstain => {}
                Vote::Coherent => {
                    log_pos += acc.ln();
                    log_neg += (1.0 - acc).ln();
                }
                Vote::Incoherent => {
                    log_pos += (1.0 - acc).ln();
                    log_neg += acc.ln();
                }
            }
        }
        let m = log_pos.max(log_neg);
        let pos = (log_pos - m).exp();
        let neg = (log_neg - m).exp();
        pos / (pos + neg)
    }

    /// Fitted per-function accuracies.
    pub fn accuracies(&self) -> &[f64] {
        &self.accuracies
    }

    /// Fitted prior P(coherent).
    pub fn prior(&self) -> f64 {
        self.prior
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthesize votes from a known generative process, fit, and verify the
    /// model separates reliable from unreliable functions.
    fn synth_votes(n: usize, accs: &[f64], abstain: f64, seed: u64) -> (Vec<Vec<Vote>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut votes = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        for _ in 0..n {
            let y = rng.gen_bool(0.5);
            truth.push(y);
            let row = accs
                .iter()
                .map(|&acc| {
                    if rng.gen_bool(abstain) {
                        Vote::Abstain
                    } else {
                        let correct = rng.gen_bool(acc);
                        let says_coherent = y == correct;
                        if says_coherent {
                            Vote::Coherent
                        } else {
                            Vote::Incoherent
                        }
                    }
                })
                .collect();
            votes.push(row);
        }
        (votes, truth)
    }

    #[test]
    fn em_recovers_relative_accuracies() {
        let true_accs = [0.95, 0.9, 0.6];
        let (votes, _) = synth_votes(3000, &true_accs, 0.2, 1);
        let model = LabelModel::fit(&votes);
        let fitted = model.accuracies();
        assert!(fitted[0] > fitted[2] + 0.1, "fitted: {fitted:?}");
        assert!(fitted[1] > fitted[2], "fitted: {fitted:?}");
    }

    #[test]
    fn posterior_beats_single_noisy_rule() {
        let true_accs = [0.9, 0.85, 0.8, 0.55];
        let (votes, truth) = synth_votes(4000, &true_accs, 0.25, 2);
        let model = LabelModel::fit(&votes);
        let mut correct_model = 0usize;
        let mut correct_noisy = 0usize;
        for (row, &y) in votes.iter().zip(&truth) {
            let pred = model.posterior_coherent(row) > 0.5;
            if pred == y {
                correct_model += 1;
            }
            // Baseline: trust the noisiest rule alone (abstain -> coin flip
            // counts as wrong half the time; approximate by prior 0.5).
            let noisy_pred = match row[3] {
                Vote::Coherent => true,
                Vote::Incoherent => false,
                Vote::Abstain => y, // be generous to the baseline
            };
            if noisy_pred == y {
                correct_noisy += 1;
            }
        }
        assert!(
            correct_model > correct_noisy,
            "model {correct_model} vs noisy-rule {correct_noisy}"
        );
        assert!(correct_model as f64 / truth.len() as f64 > 0.85);
    }

    #[test]
    fn all_abstain_returns_prior() {
        let model = LabelModel::untrained(3);
        let p = model.posterior_coherent(&[Vote::Abstain, Vote::Abstain, Vote::Abstain]);
        assert!((p - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unanimous_votes_move_posterior() {
        let model = LabelModel::untrained(3);
        let pos = model.posterior_coherent(&[Vote::Coherent; 3]);
        let neg = model.posterior_coherent(&[Vote::Incoherent; 3]);
        assert!(pos > 0.9);
        assert!(neg < 0.1);
    }

    #[test]
    fn conflicting_votes_land_in_middle() {
        let model = LabelModel::untrained(2);
        let p = model.posterior_coherent(&[Vote::Coherent, Vote::Incoherent]);
        assert!((p - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_fit_is_safe() {
        let model = LabelModel::fit(&[]);
        assert_eq!(model.accuracies().len(), 0);
        assert!((model.prior() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracies_stay_clamped() {
        // Perfectly correlated rules would push accuracies to 1 without the
        // clamp.
        let votes: Vec<Vec<Vote>> = (0..200)
            .map(|i| {
                let v = if i % 2 == 0 {
                    Vote::Coherent
                } else {
                    Vote::Incoherent
                };
                vec![v; 4]
            })
            .collect();
        let model = LabelModel::fit(&votes);
        for &a in model.accuracies() {
            assert!(a <= LabelModel::ACC_RANGE.1 + 1e-12);
            assert!(a >= LabelModel::ACC_RANGE.0 - 1e-12);
        }
    }

    #[test]
    fn signed_encoding() {
        assert_eq!(Vote::Coherent.signed(), 1);
        assert_eq!(Vote::Incoherent.signed(), -1);
        assert_eq!(Vote::Abstain.signed(), 0);
    }
}
