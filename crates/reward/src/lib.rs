//! # atena-reward
//!
//! The compound reward signal of ATENA (paper §4.2):
//!
//! - **Interestingness** — a conciseness measure for group-by displays
//!   (`h₁(g/r)·h₂(a)` with normalized sigmoids) and a KL-divergence
//!   deviation measure for filter displays;
//! - **Diversity** — the minimal Euclidean distance between the new display
//!   vector and every previously seen one;
//! - **Coherency** — a weak-supervision classifier: heuristic labeling
//!   rules (general + data-dependent + focal-attribute) combined by a
//!   from-scratch Snorkel-style generative [`LabelModel`] fit with EM.
//!
//! [`CompoundReward`] implements the environment's `RewardModel` trait and
//! auto-balances component weights on a random-policy probe so that no
//! component contributes less than 10% of the total (paper §6.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coherency;
mod compound;
mod diversity;
mod interestingness;
mod labelmodel;
mod sigmoid;

pub use coherency::{
    AggregateCategoricalRule, AggregateIdentifierRule, BackAfterBackRule, CoherencyClassifier,
    CoherencyConfig, CoherencyRule, DrillDownRule, DrillIntoExtremeRule, EmptyResultRule,
    FocalAttrRule, GroupAfterFilterRule, GroupOnContinuousRule, GroupOnIdentifierRule,
    HighCardinalityKeyRule, InvalidOpRule, NoNovelViewRule, RefilterSameAttrRule,
    RegroupSameKeyRule, RepeatedOpRule, SingletonGroupsRule, TooManyGroupAttrsRule,
    UselessFilterRule,
};
pub use compound::{random_action, CompoundReward, PenaltyConfig, RewardComponents, RewardWeights};
pub use diversity::{min_distance, step_diversity, DiversityConfig};
pub use interestingness::{
    display_interestingness, filter_interestingness, group_interestingness, step_interestingness,
    InterestingnessConfig,
};
pub use labelmodel::{LabelModel, Vote};
pub use sigmoid::NormalizedSigmoid;
