//! Offline stand-in for `proptest`.
//!
//! Re-implements the slice of the proptest 1.x API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, range/tuple/`Just`
//! strategies, `prop::collection::vec`, `prop::option::of`, `any::<T>()`,
//! [`ProptestConfig::with_cases`], and the `proptest!` / `prop_oneof!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate: inputs are drawn from a fixed
//! deterministic seed per test (derived from the test name), failures are
//! reported by panicking with the failing case index, and there is **no
//! shrinking** — the first failing input is reported as-is.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each test in the block `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of one type.
///
/// Object-safe: `generate` takes `&self`, and the combinator methods carry
/// `Self: Sized`, so `Box<dyn Strategy<Value = T>>` works (used by
/// `prop_oneof!`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (mirrors proptest's `BoxedStrategy`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from a non-empty list of alternatives.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        OneOf { alternatives }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.alternatives.len());
        self.alternatives[i].generate(rng)
    }
}

// Integer ranges are strategies: `0u64..500`, `-50i64..50`, ...
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// Tuples of strategies generate tuples of values.
macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: `any::<u8>()` etc.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Length specification for [`vec`]: a fixed `usize` or `lo..hi`.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_exclusive: n + 1,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange {
                    lo: r.start,
                    hi_exclusive: r.end,
                }
            }
        }

        /// Strategy for `Vec<T>` with element strategy `S`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vectors of `element` values with length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy for `Option<T>`; `None` with probability 1/4 (close to
        /// real proptest's default weighting).
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
                if rng.gen_range(0u8..4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }

        /// `Some(inner)` most of the time, `None` occasionally.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

/// Deterministic per-test RNG: FNV-1a over the test path, so every test has
/// its own reproducible stream independent of declaration order.
pub fn rng_for_test(test_path: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `fn name(param in strategy, ...) { body }` items (with outer attributes,
/// typically `#[test]` and doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal: expand one test item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($param:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            $(let $param = $strategy;)+
            for __case in 0..__config.cases {
                $(let $param = $crate::Strategy::generate(&$param, &mut __rng);)+
                let __run = ::std::panic::AssertUnwindSafe(|| { $body });
                if let Err(__payload) = ::std::panic::catch_unwind(__run) {
                    eprintln!(
                        "proptest: test {} failed at case {}/{} (no shrinking in offline shim)",
                        stringify!($name), __case + 1, __config.cases,
                    );
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alternative:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($alternative)),+])
    };
}

/// Assert inside a property test (panics on failure; no early-return shrink
/// machinery in the offline shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Act {
        Go { speed: usize },
        Stop,
    }

    fn act_strategy() -> impl Strategy<Value = Act> {
        prop_oneof![
            (0usize..10, 0usize..3).prop_map(|(speed, _)| Act::Go { speed }),
            Just(Act::Stop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in -50i64..50, y in 1usize..7) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..7).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_spec(
            xs in prop::collection::vec(any::<u8>(), 1..20),
            fixed in prop::collection::vec(0u8..3, 4),
            maybe in prop::option::of(0i64..30),
        ) {
            prop_assert!((1..20).contains(&xs.len()));
            prop_assert_eq!(fixed.len(), 4);
            if let Some(v) = maybe {
                prop_assert!((0..30).contains(&v));
            }
        }

        #[test]
        fn oneof_covers_alternatives(acts in prop::collection::vec(act_strategy(), 40..60)) {
            prop_assert!(acts.iter().any(|a| matches!(a, Act::Go { .. })));
            prop_assert!(acts.iter().any(|a| *a == Act::Stop));
            for a in &acts {
                if let Act::Go { speed } = a {
                    prop_assert!(*speed < 10, "speed {} out of range", speed);
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (0u64..1000).prop_map(|v| v * 2);
        let mut a = crate::rng_for_test("x");
        let mut b = crate::rng_for_test("x");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u8..10) {
                prop_assert!(x < 5);
            }
        }
        inner();
    }
}
