//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn` +
//! `ScopedJoinHandle::join`, all of which std has provided natively since
//! Rust 1.63. This shim adapts the crossbeam calling convention (the spawn
//! closure receives the scope, `scope` returns a `Result`) onto
//! `std::thread::scope`.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// A scope handle; lets spawned closures spawn further siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // A `Scope` is just a shared reference to std's (Sync) scope.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries the panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let this = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&this)),
            }
        }
    }

    /// Run `f` with a scope in which borrowing threads can be spawned; all
    /// threads are joined before this returns.
    ///
    /// Unlike crossbeam, a panicking unjoined child propagates the panic
    /// instead of surfacing through `Err` — callers here join every handle
    /// and treat `Err` as fatal anyway, so the difference is unobservable.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1, 2, 3, 4];
        let total: i32 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<i32>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        })
        .expect("scope ok");
        assert_eq!(total, 10);
    }

    #[test]
    fn threads_can_mutate_disjoint_borrows() {
        let mut slots = vec![0u64; 4];
        thread::scope(|s| {
            let handles: Vec<_> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| s.spawn(move |_| *slot = i as u64 + 1))
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(slots, vec![1, 2, 3, 4]);
    }

    #[test]
    fn join_surfaces_panics() {
        let caught = thread::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(caught.is_err());
    }
}
