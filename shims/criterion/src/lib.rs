//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion 0.5 API the workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::sample_size`], [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros — on top of plain
//! `std::time::Instant` wall-clock timing.
//!
//! Reports median/mean per-iteration times as text on stdout; there is no
//! statistical analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver. One per `criterion_group!` function.
pub struct Criterion {
    /// Substring filter from the command line; only matching benchmark ids run.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `bin --bench [filter]`; any other
        // non-flag argument is a name filter, flags are ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'c> BenchmarkGroup<'c> {
    /// Number of timed samples per benchmark (default 100).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark. The closure receives a [`Bencher`] and must call
    /// [`Bencher::iter`] with the routine to measure.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name.as_ref());
        if let Some(f) = &self.criterion.filter {
            if !id.contains(f.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        bencher.report(&id);
        self
    }

    /// End the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`: warm up briefly, pick an iteration count that makes
    /// each sample measurable, then record `sample_size` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and calibration: find iters-per-sample so one sample takes
        // roughly 1ms (bounded so fast routines don't spin forever).
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples: routine never called iter)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "{id:<40} median {:>12}  mean {:>12}  ({} samples)",
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a group runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("shim");
        let mut calls = 0u64;
        g.sample_size(2);
        g.bench_function("counting", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 0, "routine should have been invoked");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut g = c.benchmark_group("shim");
        let mut calls = 0u64;
        g.bench_function("skipped", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 0, "filtered-out benchmark must not run");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(7)), "7.00 ms");
    }
}
