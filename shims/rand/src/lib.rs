//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the small slice of the rand 0.8 API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic for a given seed, which is all the
//! experiments require. Streams are **not** bit-compatible with the real
//! `rand` crate; nothing in the workspace depends on rand's exact streams.

#![forbid(unsafe_code)]

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of reproducible generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed. Nearby seeds yield unrelated
    /// streams (the seed is expanded through SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\*.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly from their "natural" distribution (`rng.gen()`):
/// full range for integers, `[0, 1)` for floats, fair coin for `bool`.
pub trait Standard01: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard01 for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard01 for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard01 for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard01 for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard01 for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a bounded interval.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draw from `[start, end)` if `inclusive` is false, `[start, end]` if
    /// true. Panics if the interval is empty.
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let span = (end as i128 - start as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                let r = (rng.next_u64() as u128) % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                assert!(if inclusive { start <= end } else { start < end },
                        "cannot sample empty range");
                let u: $t = Standard01::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range types accepted by [`Rng::gen_range`]. The single blanket impl per
/// range shape keeps integer-literal inference working (`gen_range(0..12)`
/// adopts the type demanded by the surrounding expression, as in real rand).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, *self.start(), *self.end(), true)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the type's natural distribution (see [`Standard01`]).
    fn gen<T: Standard01>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(-8i64..5);
            assert!((-8..5).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let f = rng.gen_range(-0.05f32..0.05);
            assert!((-0.05..0.05).contains(&f));
            let w = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&w));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits: {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_uniformish() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> u8 {
            rng.gen_range(0..3u8)
        }
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(draw(&mut rng) < 3);
        }
    }
}
