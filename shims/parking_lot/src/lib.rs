//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's panic-free API: `lock`,
//! `read`, and `write` return guards directly instead of `Result`s. Poisoned
//! locks are recovered (parking_lot has no poisoning at all, so continuing
//! with the inner data matches its semantics).

#![forbid(unsafe_code)]

use std::sync::{self, LockResult};

/// Mutual exclusion lock; `lock()` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// Reader-writer lock; `read()`/`write()` never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

fn unpoison<G>(result: LockResult<G>) -> G {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn guards_survive_poisoning() {
        let l = Arc::new(RwLock::new(0));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
