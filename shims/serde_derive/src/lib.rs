//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! shim.
//!
//! crates.io is unreachable in this build environment, so there is no
//! `syn`/`quote`; instead this crate walks the raw [`proc_macro`] token
//! stream directly. It supports exactly the shapes the workspace derives on:
//!
//! * structs with named fields (honouring `#[serde(skip)]`),
//! * tuple structs (newtypes serialize transparently, like real serde),
//! * unit structs,
//! * enums with unit / tuple / struct variants (externally tagged, the
//!   real-serde default JSON layout).
//!
//! Generics are intentionally unsupported — no derived type in the
//! workspace is generic — and hitting one fails the build loudly rather
//! than silently producing wrong code.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
}

/// The shapes of a struct body or an enum variant payload.
enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

/// A parsed `struct` or `enum` item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consume leading attributes (`#[...]`, including expanded doc comments);
/// returns whether any of them was `#[serde(skip)]`.
fn skip_attributes(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut has_skip = false;
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let [TokenTree::Ident(tag), TokenTree::Group(args)] = &inner[..] {
                    if tag.to_string() == "serde"
                        && args
                            .stream()
                            .into_iter()
                            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
                    {
                        has_skip = true;
                    }
                }
            }
            other => panic!("serde_derive: malformed attribute, found {other:?}"),
        }
    }
    has_skip
}

/// Consume an optional visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic type `{name}`");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Parse `name: Type, ...` field lists (struct bodies and struct variants).
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            break;
        }
        let skip = skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        consume_type(&mut tokens);
        fields.push(Field { name, skip });
    }
    fields
}

/// Consume one type, stopping at a top-level `,` (which is also consumed)
/// or end of stream. Tracks `<`/`>` nesting manually; parens/brackets are
/// already single groups in the token tree.
fn consume_type(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth = 0usize;
    for token in tokens.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Count the fields of a tuple struct / tuple variant payload.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0usize;
    while tokens.peek().is_some() {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break; // trailing comma
        }
        consume_type(&mut tokens);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        if tokens.peek().is_none() {
            break;
        }
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                tokens.next();
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        // Consume the separating comma, if any. Explicit discriminants
        // (`Variant = 3`) are not supported by the shim.
        match tokens.next() {
            None => {
                variants.push((name, fields));
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push((name, fields)),
            other => panic!("serde_derive: unexpected token after variant `{name}`: {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Content::Null".to_string(),
        Fields::Named(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__m.push((String::from(\"{0}\"), ::serde::Serialize::to_content(&self.{0})));\n",
                    f.name
                ));
            }
            format!("let mut __m = Vec::new();\n{pushes}::serde::Content::Map(__m)")
        }
        Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

fn gen_struct_deserialize(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("let _ = __c; Ok({name})"),
        Fields::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!("{}: Default::default(),\n", f.name));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::field(__m, \"{0}\", \"{name}\")?,\n",
                        f.name
                    ));
                }
            }
            format!(
                "let __m = __c.as_map().ok_or_else(|| \
                 ::serde::DeError::expected(\"map for struct {name}\"))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_content(__c)?))"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __c.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"sequence for struct {name}\"))?;\n\
                 if __s.len() != {n} {{ return Err(::serde::DeError::expected(\
                 \"{n} elements for struct {name}\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (vname, fields) in variants {
        match fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Content::Str(String::from(\"{vname}\")),\n"
            )),
            Fields::Tuple(1) => arms.push_str(&format!(
                "{name}::{vname}(__f0) => ::serde::Content::Map(vec![(String::from(\"{vname}\"), \
                 ::serde::Serialize::to_content(__f0))]),\n"
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname}({}) => ::serde::Content::Map(vec![(String::from(\"{vname}\"), \
                     ::serde::Content::Seq(vec![{}]))]),\n",
                    binds.join(", "),
                    items.join(", ")
                ));
            }
            Fields::Named(fs) => {
                let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                let items: Vec<String> = fs
                    .iter()
                    .map(|f| {
                        format!(
                            "(String::from(\"{0}\"), ::serde::Serialize::to_content({0}))",
                            f.name
                        )
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname} {{ {} }} => ::serde::Content::Map(vec![(String::from(\"{vname}\"), \
                     ::serde::Content::Map(vec![{}]))]),\n",
                    binds.join(", "),
                    items.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[(String, Fields)]) -> String {
    let mut unit_arms = String::new();
    let mut payload_arms = String::new();
    for (vname, fields) in variants {
        match fields {
            Fields::Unit => unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n")),
            Fields::Tuple(1) => payload_arms.push_str(&format!(
                "\"{vname}\" => Ok({name}::{vname}(::serde::Deserialize::from_content(__v)?)),\n"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                    .collect();
                payload_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                     let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\
                     \"sequence for variant {name}::{vname}\"))?;\n\
                     if __s.len() != {n} {{ return Err(::serde::DeError::expected(\
                     \"{n} elements for variant {name}::{vname}\")); }}\n\
                     Ok({name}::{vname}({}))\n}}\n",
                    items.join(", ")
                ));
            }
            Fields::Named(fs) => {
                let inits: Vec<String> = fs
                    .iter()
                    .map(|f| {
                        if f.skip {
                            format!("{}: Default::default()", f.name)
                        } else {
                            format!(
                                "{0}: ::serde::field(__m, \"{0}\", \"{name}::{vname}\")?",
                                f.name
                            )
                        }
                    })
                    .collect();
                payload_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                     let __m = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\
                     \"map for variant {name}::{vname}\"))?;\n\
                     Ok({name}::{vname} {{ {} }})\n}}\n",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         #[allow(unused_variables)]\n\
         fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         if let ::serde::Content::Str(__s) = __c {{\n\
             return match __s.as_str() {{\n{unit_arms}\
             __other => Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n}};\n\
         }}\n\
         if let ::serde::Content::Map(__m) = __c {{\n\
             if __m.len() == 1 {{\n\
                 let (__k, __v) = &__m[0];\n\
                 return match __k.as_str() {{\n{payload_arms}\
                 __other => Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n}};\n\
             }}\n\
         }}\n\
         Err(::serde::DeError::expected(\"externally tagged enum {name}\"))\n\
         }}\n}}\n"
    )
}
