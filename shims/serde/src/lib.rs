//! Offline stand-in for the `serde` crate.
//!
//! The build environment cannot fetch crates.io, so this crate provides a
//! miniature serialization framework with the same *surface* as the serde
//! subset the workspace uses: `Serialize`/`Deserialize` traits, derive
//! macros (`#[derive(Serialize, Deserialize)]`, honouring `#[serde(skip)]`),
//! and enough impls for the primitive/container types that appear in the
//! workspace's config, checkpoint, and report structs.
//!
//! Instead of serde's visitor-based zero-copy data model, everything funnels
//! through one self-describing tree, [`Content`] — the `serde_json` shim
//! renders/parses that tree as JSON. External enum tagging and newtype
//! transparency match real serde's JSON output shape.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// The self-describing value tree all (de)serialization passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (anything that fits `i64`).
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (JSON array).
    Seq(Vec<Content>),
    /// Key-value map (JSON object), insertion-ordered.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Alias for [`Content::as_seq`] matching `serde_json::Value::as_array`.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Integer value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Integer value as `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::I64(v) => u64::try_from(v).ok(),
            Content::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Map lookup by key (`None` for non-maps / missing keys).
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// `value["key"]` navigation; missing keys yield `Null` (like serde_json).
impl std::ops::Index<&str> for Content {
    type Output = Content;
    fn index(&self, key: &str) -> &Content {
        const NULL: Content = Content::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` navigation; out-of-range yields `Null` (like serde_json).
impl std::ops::Index<usize> for Content {
    type Output = Content;
    fn index(&self, idx: usize) -> &Content {
        const NULL: Content = Content::Null;
        self.as_seq().and_then(|s| s.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Content> for &str {
    fn eq(&self, other: &Content) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X" error.
    pub fn expected(what: &str) -> Self {
        DeError(format!("expected {what}"))
    }

    /// Missing struct field.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` for `{ty}`"))
    }

    /// Unknown enum variant.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for `{ty}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Content`] tree.
pub trait Serialize {
    /// Convert to the self-describing tree.
    fn to_content(&self) -> Content;
}

/// Deserialization from the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from the self-describing tree.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Compatibility alias: the workspace sometimes names `serde::ser`/`de`.
pub mod ser {
    pub use super::{Content, Serialize};
}

/// See [`ser`].
pub mod de {
    pub use super::{Content, DeError, Deserialize};

    /// In real serde `DeserializeOwned` relaxes the lifetime; our model has
    /// no borrowed variant, so it is a plain alias bound.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                c.as_i64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| DeError::expected(stringify!($t)))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                match i64::try_from(*self) {
                    Ok(v) => Content::I64(v),
                    Err(_) => Content::U64(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                c.as_u64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| DeError::expected(stringify!($t)))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_f64().ok_or_else(|| DeError::expected("f64"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        // Narrowing the parsed f64 matches real serde_json's behaviour and
        // round-trips every finite f32 exactly.
        c.as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| DeError::expected("f32"))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_bool().ok_or_else(|| DeError::expected("bool"))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let s = c.as_str().ok_or_else(|| DeError::expected("char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::expected("single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(_: &Content) -> Result<Self, DeError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_seq()
            .ok_or_else(|| DeError::expected("sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_content(c)?;
        <[T; N]>::try_from(items).map_err(|_| DeError(format!("expected array of length {N}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let seq = c.as_seq().ok_or_else(|| DeError::expected("tuple sequence"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError(format!("expected tuple of length {expected}")));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Rc::new)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sort for deterministic output (HashMap iteration order is random).
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::expected("map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::expected("map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

/// Derive-macro helper: fetch a struct field from a map, tolerating absent
/// optional fields by substituting `Null` (so `Option<T>` fields default to
/// `None`, as in real serde).
pub fn field<T: Deserialize>(
    map: &[(String, Content)],
    field: &str,
    ty: &str,
) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == field) {
        Some((_, v)) => T::from_content(v),
        None => T::from_content(&Content::Null).map_err(|_| DeError::missing_field(field, ty)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(
            u64::from_content(&18_446_744_073_709_551_615u64.to_content()),
            Ok(u64::MAX)
        );
        assert_eq!(i64::from_content(&(-5i64).to_content()), Ok(-5));
        assert_eq!(f32::from_content(&0.1f32.to_content()), Ok(0.1f32));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn options_use_null() {
        assert_eq!(None::<u32>.to_content(), Content::Null);
        assert_eq!(Option::<u32>::from_content(&Content::Null), Ok(None));
        assert_eq!(Option::<u32>::from_content(&Content::I64(3)), Ok(Some(3)));
    }

    #[test]
    fn nested_containers_round_trip() {
        let v: Vec<(String, Vec<f64>)> = vec![("a".into(), vec![1.0, 2.5]), ("b".into(), vec![])];
        let c = v.to_content();
        let back: Vec<(String, Vec<f64>)> = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn arrays_check_length() {
        let a: [usize; 2] = [3, 4];
        let c = a.to_content();
        assert_eq!(<[usize; 2]>::from_content(&c), Ok([3, 4]));
        assert!(<[usize; 3]>::from_content(&c).is_err());
    }

    #[test]
    fn content_navigation() {
        let c = Content::Map(vec![(
            "cells".into(),
            Content::Seq(vec![Content::Str("x".into())]),
        )]);
        assert_eq!(c["cells"].as_array().unwrap().len(), 1);
        assert_eq!(c["cells"][0], "x");
        assert_eq!(c["missing"], Content::Null);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u32::from_content(&Content::Str("nope".into())).is_err());
        assert!(Vec::<u8>::from_content(&Content::I64(1)).is_err());
        assert!(u8::from_content(&Content::I64(256)).is_err());
    }
}
