//! Offline stand-in for `serde_json`.
//!
//! Works with the offline `serde` shim: [`to_string`]/[`to_string_pretty`]
//! render a [`serde::Content`] tree as JSON text, [`from_str`] parses JSON
//! text back into the tree and lets the target type reconstruct itself.
//!
//! Numbers are printed with Rust's shortest-round-trip float formatting, so
//! every finite `f64`/`f32` survives a round trip bit-exactly. Non-finite
//! floats serialize as `null`, matching real serde_json.

#![forbid(unsafe_code)]

pub use serde::Content as Value;
use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serialize to human-indented JSON (2 spaces, like real serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`Deserialize`] type (including [`Value`]).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's float Display is shortest-round-trip; ensure the
                // token stays a JSON number (Display never emits exponents,
                // but integral values need a ".0" marker to re-parse as F64
                // — dropping it is also fine since deserializers accept
                // integers where floats are expected).
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.consume_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.error("invalid number"));
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for json in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[0.1f64, 1e-300, -2.5e17, f64::MAX, 1.0 / 3.0] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, f, "json was {json}");
        }
        for &f in &[0.1f32, 3.4e38f32, -1.0e-40f32] {
            let json = to_string(&f).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(back, f, "json was {json}");
        }
    }

    #[test]
    fn u64_and_i64_extremes_round_trip() {
        let json = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), u64::MAX);
        let json = to_string(&i64::MIN).unwrap();
        assert_eq!(from_str::<i64>(&json).unwrap(), i64::MIN);
    }

    #[test]
    fn nan_and_infinity_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode \u{1F600} nul-ish \u{1}";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: String = from_str("\"\\u0041\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "A\u{1F600}");
    }

    #[test]
    fn containers_round_trip() {
        let json = "{\"a\":[1,2.5,null],\"b\":{\"nested\":true}}";
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
        assert_eq!(v["a"].as_array().unwrap().len(), 3);
        assert_eq!(v["b"]["nested"].as_bool(), Some(true));
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let json = "{\"xs\":[1,2],\"name\":\"x\"}";
        let v: Value = from_str(json).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  "));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_rejected() {
        for bad in [
            "{not json",
            "",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn value_compares_with_str() {
        let v: Value = from_str("{\"dataset_name\":\"flights\"}").unwrap();
        assert_eq!(v["dataset_name"], "flights");
    }
}
